//! Process-lifetime serving counters.
//!
//! The batch drivers report their accounting per call: every
//! [`BatchReport`] starts its `n_cold_solves` / `n_cache_hits` /
//! `n_dedup_reuses` tallies from zero. A long-running service wants the
//! other view — monotonic, process-lifetime totals that several batch
//! workers can feed concurrently and a `/stats` endpoint can read at any
//! moment without resetting anything. [`ServingCounters`] is that view:
//! a bag of atomics with an [`absorb`](ServingCounters::absorb) side
//! absorbing finished batch reports and a
//! [`snapshot`](ServingCounters::snapshot) side producing a consistent
//! point-in-time copy.
//!
//! Every counter is monotonically non-decreasing and reads are
//! reset-free, so two snapshots taken in order can be subtracted to get
//! an interval rate and a snapshot taken mid-traffic never undercounts
//! work that earlier snapshots already saw. (Counts from a batch become
//! visible when the batch's report is absorbed — a batch still in flight
//! is accounted by the in-flight gauges of the caller, not here.)

use std::sync::atomic::{AtomicU64, Ordering};

use crate::driver::BatchReport;
use crate::error::Degradation;
use crate::methods::Method;

/// Labels of the degradation rungs, in ladder order. Index with
/// [`rung_index`].
pub const DEGRADATION_LABELS: [&str; 4] = ["none", "heuristic", "card_free", "random_order"];

/// Index of a [`Degradation`] rung into [`DEGRADATION_LABELS`]-shaped
/// arrays.
pub fn rung_index(d: Degradation) -> usize {
    match d {
        Degradation::None => 0,
        Degradation::Heuristic => 1,
        Degradation::CardFree => 2,
        Degradation::RandomOrder => 3,
    }
}

/// Win-table slots: the paper's nine methods, then `CARDFREE`, then a
/// catch-all for producers no current method name matches (e.g. a cache
/// entry written by a newer binary).
const N_WIN_SLOTS: usize = Method::ALL.len() + 2;

/// Stable label for each win slot. Public so per-class win tables (the
/// server's `method_wins_by_class`) can stay aligned with the global
/// [`ServingSnapshot::method_wins`] table.
pub fn win_labels() -> [&'static str; N_WIN_SLOTS] {
    let mut labels = [""; N_WIN_SLOTS];
    for (i, m) in Method::ALL.into_iter().enumerate() {
        labels[i] = m.name();
    }
    labels[N_WIN_SLOTS - 2] = Method::Cardfree.name();
    labels[N_WIN_SLOTS - 1] = "other";
    labels
}

/// Index of a producer label into [`win_labels`]-shaped arrays.
pub fn win_slot(producer: &str) -> usize {
    match Method::parse(producer) {
        Some(Method::Cardfree) => N_WIN_SLOTS - 2,
        Some(m) => Method::ALL
            .into_iter()
            .position(|x| x == m)
            .unwrap_or(N_WIN_SLOTS - 1),
        None => N_WIN_SLOTS - 1,
    }
}

/// Monotonic, process-lifetime counters over batch serving — the shared
/// accumulator behind a server's `/stats` endpoint.
///
/// All methods take `&self`; share it across batch workers behind an
/// `Arc` (or a `static`). See the module docs for the monotonicity
/// contract.
#[derive(Debug, Default)]
pub struct ServingCounters {
    queries: AtomicU64,
    cold_solves: AtomicU64,
    cache_hits: AtomicU64,
    dedup_reuses: AtomicU64,
    failed: AtomicU64,
    degraded: AtomicU64,
    deadline_expired: AtomicU64,
    units_used: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    degradation: [AtomicU64; 4],
    wins: [AtomicU64; N_WIN_SLOTS],
}

/// Point-in-time copy of [`ServingCounters`], for stats endpoints and
/// JSON output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServingSnapshot {
    /// Queries answered (sum of absorbed batch sizes).
    pub queries: u64,
    /// Queries answered by running the full combinatorial search.
    pub cold_solves: u64,
    /// Queries answered from a pre-existing plan-cache entry.
    pub cache_hits: u64,
    /// Queries answered by reusing a sibling's in-batch cold solve.
    pub dedup_reuses: u64,
    /// Queries that produced no plan at all.
    pub failed: u64,
    /// Queries whose plan came from a fallback rung.
    pub degraded: u64,
    /// Queries whose wall-clock deadline expired during the search.
    pub deadline_expired: u64,
    /// Total budget units consumed.
    pub units_used: u64,
    /// Batches absorbed.
    pub batches: u64,
    /// Largest absorbed batch.
    pub max_batch: u64,
    /// Per-rung degradation counts of successful queries, aligned with
    /// [`DEGRADATION_LABELS`] (index 0 counts undegraded plans).
    pub degradation: [u64; 4],
    /// Per-method win counts: how many served plans each method is
    /// credited with (cache entries remember their producer; cold solves
    /// credit the configured method). Stable order and length — every
    /// known method appears, zero or not, plus a final `"other"` slot.
    pub method_wins: Vec<(&'static str, u64)>,
}

impl ServingCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a finished batch into the lifetime totals. Called once per
    /// [`BatchReport`]; safe to call concurrently from many workers.
    pub fn absorb(&self, report: &BatchReport) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queries
            .fetch_add(report.results.len() as u64, Ordering::Relaxed);
        self.cold_solves
            .fetch_add(report.n_cold_solves as u64, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(report.n_cache_hits as u64, Ordering::Relaxed);
        self.dedup_reuses
            .fetch_add(report.n_dedup_reuses as u64, Ordering::Relaxed);
        self.failed
            .fetch_add(report.n_failed as u64, Ordering::Relaxed);
        self.degraded
            .fetch_add(report.n_degraded as u64, Ordering::Relaxed);
        self.deadline_expired
            .fetch_add(report.n_deadline_expired as u64, Ordering::Relaxed);
        self.units_used
            .fetch_add(report.units_used, Ordering::Relaxed);
        self.max_batch
            .fetch_max(report.results.len() as u64, Ordering::Relaxed);
        for (result, via) in report.results.iter().zip(&report.outcomes) {
            if let Ok(r) = result {
                self.degradation[rung_index(r.degradation)].fetch_add(1, Ordering::Relaxed);
                self.wins[win_slot(via.producer)].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Reset-free point-in-time copy. Individual counters are loaded
    /// independently, so a snapshot racing an `absorb` may see part of
    /// that batch — but never less than any earlier snapshot saw.
    pub fn snapshot(&self) -> ServingSnapshot {
        let labels = win_labels();
        ServingSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            cold_solves: self.cold_solves.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            dedup_reuses: self.dedup_reuses.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            units_used: self.units_used.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            degradation: std::array::from_fn(|i| self.degradation[i].load(Ordering::Relaxed)),
            method_wins: labels
                .into_iter()
                .zip(&self.wins)
                .map(|(name, w)| (name, w.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{optimize_batch, BatchOptions, OptimizerConfig};
    use crate::methods::Method;
    use ljqo_catalog::{Query, QueryBuilder};
    use ljqo_cost::MemoryCostModel;

    fn queries(n: u64) -> Vec<Query> {
        (0..n)
            .map(|i| {
                QueryBuilder::new()
                    .relation("a", 1000 + i * 13)
                    .relation("b", 40 + i)
                    .relation("c", 700)
                    .join("a", "b", 0.01)
                    .join("b", "c", 0.002)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn absorb_accumulates_monotonically() {
        let qs = queries(4);
        let model = MemoryCostModel::default();
        let cfg = OptimizerConfig::new(Method::Iai).with_seed(3);
        let report = optimize_batch(&qs, &model, &cfg, &BatchOptions::default());
        assert_eq!(report.outcomes.len(), report.results.len());

        let counters = ServingCounters::new();
        counters.absorb(&report);
        let first = counters.snapshot();
        assert_eq!(first.queries, 4);
        assert_eq!(first.cold_solves, 4);
        assert_eq!(first.batches, 1);
        assert_eq!(first.max_batch, 4);
        assert_eq!(first.degradation[0], 4, "no degradation expected");
        let iai = first
            .method_wins
            .iter()
            .find(|(n, _)| *n == "IAI")
            .unwrap()
            .1;
        assert_eq!(iai, 4);

        counters.absorb(&report);
        let second = counters.snapshot();
        assert_eq!(second.queries, 8);
        assert_eq!(second.cold_solves, 8);
        assert!(second.units_used >= first.units_used);
        assert_eq!(second.max_batch, 4);
    }

    #[test]
    fn concurrent_absorbs_never_undercount() {
        let qs = queries(3);
        let model = MemoryCostModel::default();
        let cfg = OptimizerConfig::new(Method::Ii).with_seed(9);
        let report = optimize_batch(&qs, &model, &cfg, &BatchOptions::default());
        let counters = ServingCounters::new();
        let threads = 8;
        let absorbs_per_thread = 50;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..absorbs_per_thread {
                        counters.absorb(&report);
                    }
                });
            }
        });
        let s = counters.snapshot();
        let total = threads * absorbs_per_thread;
        assert_eq!(s.batches, total);
        assert_eq!(s.queries, total * 3);
        assert_eq!(s.cold_solves, total * 3);
        let wins: u64 = s.method_wins.iter().map(|(_, w)| w).sum();
        assert_eq!(wins, total * 3);
    }

    #[test]
    fn win_slots_are_stable_and_cover_every_method() {
        let labels = win_labels();
        assert_eq!(labels.len(), Method::ALL.len() + 2);
        for m in Method::ALL {
            assert_eq!(labels[win_slot(m.name())], m.name());
        }
        assert_eq!(labels[win_slot("CARDFREE")], "CARDFREE");
        assert_eq!(labels[win_slot("no-such-method")], "other");
    }
}
