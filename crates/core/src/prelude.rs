//! Everything a typical user needs, in one import.
//!
//! ```
//! use ljqo::prelude::*;
//! ```

pub use crate::bound::{bound_report, cardinality_floors, component_bound, BoundReport};
pub use crate::bushy::{optimal_bushy_dp, BushyTree};
pub use crate::bushy_search::{
    bushy_gap_vs_dp, bushy_tree_cost, try_optimize_bushy, BushyIterativeImprovement,
    BushyOptimized, BushySimulatedAnnealing,
};
pub use crate::dp::{optimal_order_dp, optimal_order_exhaustive};
pub use crate::eval::{mean_scaled_cost, per_query_best, scaled_cost, OUTLIER_CAP};
pub use crate::parallel::{
    run_parallel, run_portfolio, run_portfolio_robust, shard_budget, Cooperation, ParallelOptions,
    ParallelResult, Parallelism, WorkerReport, PORTFOLIO, ROBUST_PORTFOLIO,
};
pub use crate::robust::{recost_plan, regret_under, regret_under_parallel, RegretSample};
pub use crate::trace::{trace_run, trace_run_scheduled, Trace, TracePoint};
pub use crate::{
    optimize, optimize_batch, optimize_batch_cached, optimize_cached, optimize_cached_parallel,
    try_optimize, try_optimize_parallel, BatchOptions, BatchReport, CacheOutcome, Degradation,
    OptError, Optimized, OptimizerConfig, ServedVia, ServingCounters, ServingSnapshot,
};
pub use crate::{IterativeImprovement, Method, MethodRunner, RandomSampling, SimulatedAnnealing};

pub use ljqo_cache::{
    fingerprint, CacheStats, FingerprintConfig, PlanCache, PlanCacheConfig, QueryFingerprint,
};
pub use ljqo_catalog::{CatalogError, JoinEdge, JoinGraph, Query, QueryBuilder, RelId, Relation};
pub use ljqo_cost::{
    BudgetSchedule, CostModel, Deadline, DiskCostModel, Evaluator, JoinCtx, MemoryCostModel,
    TimeLimit,
};
pub use ljqo_heuristics::{
    AugmentationCriterion, AugmentationHeuristic, KbzHeuristic, LocalImprovement, MstWeight,
};
pub use ljqo_plan::{JoinOrder, JoinTree, Move, MoveGenerator, MoveSet, Plan};
