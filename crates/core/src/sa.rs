//! Simulated annealing (paper Figure 2; SG88; Johnson et al. 1987).
//!
//! The variant SG88 adopted from Johnson, Aragon, McGeoch & Schevon:
//!
//! * the initial temperature is calibrated by sampling random moves so
//!   that a target fraction of uphill moves would be accepted;
//! * each temperature runs an equilibrium *chain* of `sizeFactor · N`
//!   proposed moves;
//! * geometric cooling (`T ← r·T`);
//! * the system is *frozen* when the best solution has not improved for a
//!   number of consecutive chains and the acceptance ratio has collapsed.
//!
//! The paper's stopping condition includes the overall time limit; as an
//! anytime extension, a frozen annealer with budget remaining can re-heat
//! from the best state found (`restart_on_frozen`), so that SA never idles
//! while its competitors keep searching.

use rand::Rng;

use ljqo_catalog::RelId;
use ljqo_cost::Evaluator;
use ljqo_plan::{random_valid_order, JoinOrder, MoveGenerator, MoveSet};

use crate::movepath::MovePath;

/// Simulated annealing parameters (defaults follow SG88 / JAMS87).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealing {
    /// Move-set composition.
    pub move_set: MoveSet,
    /// Chain length multiplier: each temperature proposes
    /// `size_factor · N` moves.
    pub size_factor: usize,
    /// Geometric cooling rate `r` in `T ← r·T`.
    pub cooling: f64,
    /// Target acceptance probability for uphill moves at the initial
    /// temperature.
    pub init_accept: f64,
    /// Frozen after this many consecutive chains without improving the
    /// best solution (with collapsed acceptance).
    pub frozen_chains: usize,
    /// Acceptance ratio below which a chain counts as collapsed.
    pub min_accept_ratio: f64,
    /// Re-heat from the best state instead of stopping when frozen with
    /// budget to spare.
    pub restart_on_frozen: bool,
    /// Escape hatch: force from-scratch evaluation of every candidate
    /// instead of the incremental (delta) path. See
    /// [`IterativeImprovement::full_eval`](crate::IterativeImprovement::full_eval).
    pub full_eval: bool,
    /// Filter move proposals with the compiled windowed bitset checker
    /// instead of full validity scans. See
    /// [`IterativeImprovement::compiled_moves`](crate::IterativeImprovement::compiled_moves).
    pub compiled_moves: bool,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            move_set: MoveSet::default(),
            size_factor: 16,
            cooling: 0.95,
            init_accept: 0.4,
            frozen_chains: 5,
            min_accept_ratio: 0.02,
            restart_on_frozen: true,
            full_eval: false,
            compiled_moves: true,
        }
    }
}

impl SimulatedAnnealing {
    /// Calibrate the initial temperature from `start` by sampling moves:
    /// `T₀ = mean(uphill Δ) / −ln(p₀)` makes the average uphill move
    /// acceptable with probability `p₀`. Consumes budget like any other
    /// search work.
    ///
    /// Returns `(T₀, path, start_cost)` with the move path reset to
    /// `start` so the annealing loop can continue on the same evaluated
    /// state. Returning the path matters for accounting: the old shape
    /// ([`MovePath::begin`] here *and again* in [`anneal`]) charged the
    /// start state twice — one wasted budget unit and a duplicate
    /// evaluation on every SA run.
    fn initial_temperature<'a, R: Rng + ?Sized>(
        &self,
        ev: &mut Evaluator<'a>,
        gen: &mut MoveGenerator,
        start: JoinOrder,
        rng: &mut R,
    ) -> (f64, MovePath<'a>, f64) {
        let home = start.clone();
        let (mut path, start_cost) = MovePath::begin(ev, start, self.full_eval);
        let mut current = start_cost;
        let mut uphill_sum = 0.0f64;
        let mut uphill_n = 0u32;
        let graph = ev.query().graph();
        for _ in 0..20 {
            if ev.exhausted() {
                break;
            }
            let Some((mv, attempts)) = gen.propose_counted(graph, path.order_mut(), rng) else {
                break;
            };
            ev.charge(u64::from(attempts) - 1);
            let c = path.cost_applied(ev, &mv);
            let delta = c - current;
            if delta > 0.0 && delta.is_finite() {
                uphill_sum += delta;
                uphill_n += 1;
            }
            path.accept(); // random walk: always accept during calibration
            current = c;
        }
        // Walk back to the start state; its cost was paid by `begin`, so
        // the reset is free (see [`MovePath::reset_to`]). The jump
        // invalidates the generator's windowed validity cache.
        path.reset_to(home);
        gen.reset();
        let t0 = if uphill_n == 0 {
            1.0
        } else {
            (uphill_sum / uphill_n as f64) / -(self.init_accept.ln())
        };
        (t0, path, start_cost)
    }

    /// Run annealing from `start` until frozen (and out of restarts) or the
    /// budget is exhausted. The best visited state is tracked by the
    /// evaluator.
    pub fn anneal<R: Rng + ?Sized>(&self, ev: &mut Evaluator<'_>, start: JoinOrder, rng: &mut R) {
        let n = start.len();
        if n < 2 {
            ev.cost(&start);
            return;
        }
        let mut gen = if self.compiled_moves {
            MoveGenerator::with_compiled(ev.compiled().clone(), self.move_set)
        } else {
            MoveGenerator::new(ev.query().n_relations(), self.move_set)
        };
        let (t0, mut path, mut current) = self.initial_temperature(ev, &mut gen, start, rng);
        let chain_length = (self.size_factor * n).max(4);
        let graph = ev.query().graph();

        let mut temp = t0;
        let mut stale_chains = 0usize;

        while !ev.exhausted() {
            let best_before = ev.best_cost();
            let mut accepted = 0usize;
            for _ in 0..chain_length {
                if ev.exhausted() {
                    break;
                }
                let Some((mv, attempts)) = gen.propose_counted(graph, path.order_mut(), rng) else {
                    break;
                };
                ev.charge(u64::from(attempts) - 1);
                let candidate = path.cost_applied(ev, &mv);
                let delta = candidate - current;
                let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
                if accept {
                    path.accept();
                    current = candidate;
                    accepted += 1;
                } else {
                    path.reject(&mv);
                }
            }
            temp *= self.cooling;
            let improved = ev.best_cost() < best_before;
            let collapsed = (accepted as f64) < self.min_accept_ratio * chain_length as f64;
            if improved {
                stale_chains = 0;
            } else {
                stale_chains += 1;
            }
            if stale_chains >= self.frozen_chains && collapsed {
                if self.restart_on_frozen && !ev.exhausted() {
                    // Re-heat from the best state found so far. Its cost
                    // was already paid when it was first evaluated, so the
                    // restart itself charges nothing (the incremental path
                    // rebuilds its memoized state off-budget).
                    if let Some((best, best_cost)) = ev.best() {
                        let best = best.clone();
                        path.reset_to(best);
                        gen.reset();
                        current = best_cost;
                    }
                    temp = (t0 * 0.5).max(f64::MIN_POSITIVE);
                    stale_chains = 0;
                } else {
                    break;
                }
            }
        }
    }

    /// The plain SA method: anneal from a random valid start state.
    pub fn run<R: Rng + ?Sized>(&self, ev: &mut Evaluator<'_>, component: &[RelId], rng: &mut R) {
        let start = random_valid_order(ev.query().graph(), component, rng);
        self.anneal(ev, start, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::{Query, QueryBuilder};
    use ljqo_cost::MemoryCostModel;
    use ljqo_plan::validity::is_valid;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .relation("f", 9)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .join("e", "f", 0.2)
            .build()
            .unwrap()
    }

    #[test]
    fn sa_finds_good_plans_within_budget() {
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&q, &model, 5_000);
        let mut rng = SmallRng::seed_from_u64(23);
        let comp: Vec<RelId> = q.rel_ids().collect();
        SimulatedAnnealing::default().run(&mut ev, &comp, &mut rng);
        let (best, cost) = ev.best().unwrap();
        assert!(is_valid(q.graph(), best.rels()));
        // Should clearly beat an average random state.
        let mut sum = 0.0;
        for _ in 0..50 {
            let o = random_valid_order(q.graph(), &comp, &mut rng);
            sum += ev.cost_uncharged(&o);
        }
        assert!(cost < sum / 50.0);
        // One indivisible step (propose retries + eval) may overrun.
        assert!(ev.used() <= 5_000 + 64 + 4 * 6);
    }

    #[test]
    fn sa_without_restart_freezes_before_budget() {
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&q, &model, 2_000_000);
        let mut rng = SmallRng::seed_from_u64(3);
        let comp: Vec<RelId> = q.rel_ids().collect();
        let sa = SimulatedAnnealing {
            restart_on_frozen: false,
            ..SimulatedAnnealing::default()
        };
        sa.run(&mut ev, &comp, &mut rng);
        assert!(
            !ev.exhausted(),
            "a non-restarting annealer must freeze long before 2M units"
        );
        assert!(ev.best().is_some());
    }

    #[test]
    fn singleton_component_is_trivial() {
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&q, &model);
        let mut rng = SmallRng::seed_from_u64(1);
        SimulatedAnnealing::default().run(&mut ev, &[RelId(4)], &mut rng);
        assert_eq!(ev.best().unwrap().0.rels(), &[RelId(4)]);
    }

    #[test]
    fn initial_temperature_is_positive_and_finite() {
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&q, &model);
        let mut rng = SmallRng::seed_from_u64(7);
        let comp: Vec<RelId> = q.rel_ids().collect();
        let sa = SimulatedAnnealing::default();
        let mut gen = MoveGenerator::new(q.n_relations(), sa.move_set);
        let start = random_valid_order(q.graph(), &comp, &mut rng);
        let (t0, path, start_cost) =
            sa.initial_temperature(&mut ev, &mut gen, start.clone(), &mut rng);
        assert!(t0.is_finite() && t0 > 0.0);
        assert!(start_cost.is_finite());
        // The path comes back parked on the start state, ready to anneal.
        assert_eq!(path.order(), &start);
    }

    #[test]
    fn start_state_is_charged_exactly_once() {
        // Regression: temperature calibration opened a MovePath on the
        // start state and `anneal` then opened a second one on the same
        // state — charging the start twice. With a budget of one unit the
        // whole run now performs exactly one evaluation (the start) and
        // stops, instead of spending a unit it never had.
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&q, &model, 1);
        let mut rng = SmallRng::seed_from_u64(5);
        let comp: Vec<RelId> = q.rel_ids().collect();
        SimulatedAnnealing::default().run(&mut ev, &comp, &mut rng);
        assert_eq!(ev.used(), 1);
        assert_eq!(ev.n_evals(), 1);
        assert!(ev.best().is_some());
    }
}
