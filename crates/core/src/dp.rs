//! Exact baselines: System-R-style dynamic programming and exhaustive
//! enumeration over valid left-deep join trees.
//!
//! The paper's motivation is that DP has `O(2^N)` time and space and
//! becomes infeasible beyond roughly 10 joins. We implement it anyway —
//! for small components it yields the true optimum, which the test suite
//! uses as an oracle for the heuristic and combinatorial methods, and the
//! benches use to measure how close each method gets.

use ljqo_catalog::{Query, RelId};
use ljqo_cost::estimate::clamp_card;
use ljqo_cost::{CostModel, JoinCtx};
use ljqo_plan::validity::is_valid;
use ljqo_plan::JoinOrder;

/// Maximum component size accepted by [`optimal_order_dp`]: `2^24` subset
/// states is the pragmatic ceiling for a test oracle.
pub const DP_MAX_RELATIONS: usize = 24;

/// The optimal valid left-deep join order of `component` and its cost,
/// by dynamic programming over connected subsets.
///
/// Returns `None` when the component is a single relation (no joins to
/// order). Panics if the component exceeds [`DP_MAX_RELATIONS`] relations
/// or is not connected.
pub fn optimal_order_dp(
    query: &Query,
    component: &[RelId],
    model: &dyn CostModel,
) -> Option<(JoinOrder, f64)> {
    let k = component.len();
    if k < 2 {
        return None;
    }
    assert!(
        k <= DP_MAX_RELATIONS,
        "DP over {k} relations needs 2^{k} states; limit is {DP_MAX_RELATIONS}"
    );
    let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
    let n_states = 1usize << k;

    // Joined-with masks: adj[i] = bitmask of component members joined to i.
    let mut adj = vec![0u32; k];
    let mut sel = vec![vec![1.0f64; k]; k];
    for (i, &ri) in component.iter().enumerate() {
        for (j, &rj) in component.iter().enumerate() {
            if i != j {
                if let Some(s) = query.graph().selectivity_between(ri, rj) {
                    adj[i] |= 1 << j;
                    sel[i][j] = s;
                }
            }
        }
    }

    // dp cost, running cardinality, and predecessor (mask without the last
    // relation, plus which relation was last).
    let mut cost = vec![f64::INFINITY; n_states];
    let mut card = vec![0.0f64; n_states];
    let mut last = vec![u8::MAX; n_states];
    for (i, &rel) in component.iter().enumerate() {
        let m = 1usize << i;
        cost[m] = 0.0;
        card[m] = clamp_card(query.cardinality(rel));
        last[m] = i as u8;
    }

    for mask in 1..n_states as u32 {
        if cost[mask as usize].is_infinite() {
            continue;
        }
        // Extend with every unplaced relation joined to the mask.
        for j in 0..k {
            let bit = 1u32 << j;
            if mask & bit != 0 || adj[j] & mask == 0 {
                continue;
            }
            // Combined selectivity of all predicates from j into the mask.
            let mut s = 1.0f64;
            let mut members = mask & adj[j];
            while members != 0 {
                let i = members.trailing_zeros() as usize;
                s *= sel[j][i];
                members &= members - 1;
            }
            let outer_card = card[mask as usize];
            let inner_card = query.cardinality(component[j]);
            let output = clamp_card(outer_card * inner_card * s);
            let step = model.join_cost(&JoinCtx {
                outer_card,
                inner_card,
                output_card: output,
                outer_rels: mask.count_ones() as usize,
                is_cross_product: false,
            });
            let total = cost[mask as usize] + step;
            let next = (mask | bit) as usize;
            if total < cost[next] {
                cost[next] = total;
                card[next] = output;
                last[next] = j as u8;
            }
        }
    }

    let best_cost = cost[full as usize];
    assert!(
        best_cost.is_finite(),
        "component is not connected: no valid order covers it"
    );
    // Reconstruct the order back-to-front.
    let mut order = Vec::with_capacity(k);
    let mut mask = full;
    while mask != 0 {
        let j = last[mask as usize] as usize;
        order.push(component[j]);
        mask &= !(1u32 << j);
    }
    order.reverse();
    Some((JoinOrder::new(order), best_cost))
}

/// The optimum by brute-force enumeration of all valid permutations.
/// Exponentially slower than DP; used to cross-check it in tests.
/// Practical only for components of ≲ 9 relations.
pub fn optimal_order_exhaustive(
    query: &Query,
    component: &[RelId],
    model: &dyn CostModel,
) -> Option<(JoinOrder, f64)> {
    if component.len() < 2 {
        return None;
    }
    let mut best: Option<(JoinOrder, f64)> = None;
    let mut acc: Vec<RelId> = Vec::with_capacity(component.len());
    permute(query, model, component, &mut acc, &mut best);
    best
}

fn permute(
    query: &Query,
    model: &dyn CostModel,
    rest: &[RelId],
    acc: &mut Vec<RelId>,
    best: &mut Option<(JoinOrder, f64)>,
) {
    if rest.is_empty() {
        if is_valid(query.graph(), acc) {
            let c = model.order_cost(query, acc);
            if best.as_ref().is_none_or(|&(_, bc)| c < bc) {
                *best = Some((JoinOrder::new(acc.clone()), c));
            }
        }
        return;
    }
    for i in 0..rest.len() {
        let mut next = rest.to_vec();
        let r = next.remove(i);
        acc.push(r);
        // Prune: an invalid prefix can never become valid.
        if acc.len() == 1 || is_valid(query.graph(), acc) {
            permute(query, model, &next, acc, best);
        }
        acc.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;
    use ljqo_cost::{DiskCostModel, MemoryCostModel};

    fn query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .relation("f", 9)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .join("e", "f", 0.2)
            .join("b", "e", 0.03)
            .build()
            .unwrap()
    }

    #[test]
    fn dp_matches_exhaustive_on_memory_model() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (dp_order, dp_cost) = optimal_order_dp(&q, &comp, &model).unwrap();
        let (_, ex_cost) = optimal_order_exhaustive(&q, &comp, &model).unwrap();
        assert!(
            (dp_cost - ex_cost).abs() <= ex_cost * 1e-12,
            "dp {dp_cost} vs exhaustive {ex_cost}"
        );
        assert!(is_valid(q.graph(), dp_order.rels()));
        assert!((model.order_cost(&q, dp_order.rels()) - dp_cost).abs() <= dp_cost * 1e-12);
    }

    #[test]
    fn dp_matches_exhaustive_on_disk_model() {
        let q = query();
        let model = DiskCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (_, dp_cost) = optimal_order_dp(&q, &comp, &model).unwrap();
        let (_, ex_cost) = optimal_order_exhaustive(&q, &comp, &model).unwrap();
        assert!((dp_cost - ex_cost).abs() <= ex_cost * 1e-12);
    }

    #[test]
    fn dp_beats_every_sampled_valid_order() {
        use ljqo_plan::random_valid_order;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (_, dp_cost) = optimal_order_dp(&q, &comp, &model).unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..200 {
            let o = random_valid_order(q.graph(), &comp, &mut rng);
            assert!(model.order_cost(&q, o.rels()) >= dp_cost - 1e-9);
        }
    }

    #[test]
    fn singleton_has_no_order() {
        let q = query();
        let model = MemoryCostModel::default();
        assert!(optimal_order_dp(&q, &[RelId(0)], &model).is_none());
        assert!(optimal_order_exhaustive(&q, &[RelId(0)], &model).is_none());
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_component_panics() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 10)
            .relation("c", 10)
            .join("a", "b", 0.1)
            .build()
            .unwrap();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let _ = optimal_order_dp(&q, &comp, &model);
    }

    #[test]
    fn lower_bound_holds_at_the_optimum() {
        let q = query();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let memory = MemoryCostModel::default();
        let (_, opt) = optimal_order_dp(&q, &comp, &memory).unwrap();
        assert!(memory.lower_bound(&q, &comp) <= opt + 1e-9);
        let disk = DiskCostModel::default();
        let (_, opt) = optimal_order_dp(&q, &comp, &disk).unwrap();
        assert!(disk.lower_bound(&q, &comp) <= opt + 1e-9);
    }
}
