//! # ljqo — large join query optimization
//!
//! A faithful reproduction of Arun Swami's SIGMOD 1989 study
//! *"Optimization of Large Join Queries: Combining Heuristics and
//! Combinatorial Techniques"* (extending Swami & Gupta, SIGMOD 1988): the
//! problem of picking a good join order for queries with 10–100 joins,
//! where System-R-style dynamic programming is infeasible.
//!
//! ## The pieces
//!
//! * [`IterativeImprovement`] — repeated greedy descents from random valid
//!   start states (SG88's best general technique).
//! * [`SimulatedAnnealing`] — the Johnson et al. flavored annealer SG88
//!   found second-best.
//! * Heuristics (re-exported from `ljqo-heuristics`): augmentation, KBZ,
//!   and local improvement.
//! * [`Method`] — the paper's nine combinations: **II**, **SA**, **SAA**,
//!   **SAK**, **IAI**, **IKI**, **IAL**, **AGI**, **KBI**. The paper's
//!   headline result: **IAI** (augmentation-seeded iterative improvement)
//!   wins at generous time limits, **AGI** (augmentation first, then
//!   iterative improvement) wins below ≈ `1.8N²`.
//! * [`optimize`] — the end-to-end driver: splits the query into join-graph
//!   components, budgets and optimizes each, and assembles a
//!   [`Plan`](ljqo_plan::Plan) with
//!   late cross products.
//! * [`parallel`] — multicore extensions: isolated fan-out, cooperative
//!   shared-best pruning ([`Cooperation`]), heterogeneous method
//!   portfolios ([`parallel::PORTFOLIO`]), and the batched throughput
//!   driver [`optimize_batch`].
//! * [`dp`] — exact System-R-style dynamic programming over valid
//!   left-deep trees, feasible only for small `N`; used as a test oracle
//!   and a baseline.
//! * [`bushy`] / [`bushy_search`] — the paper's open problem attacked
//!   head-on: exact bushy DP for small components, and II/SA local search
//!   over arena-backed bushy trees ([`try_optimize_bushy`]) for large
//!   ones, with path-to-root incremental re-costing.
//! * [`eval`] — the paper's scaled-cost statistics (outlying values coerced
//!   to 10).
//!
//! ## Quickstart
//!
//! ```
//! use ljqo::prelude::*;
//!
//! let query = QueryBuilder::new()
//!     .relation("orders", 100_000)
//!     .relation("customers", 10_000)
//!     .relation_with_selection("nations", 25, 0.5)
//!     .join_on_distincts("orders", "customers", 10_000.0, 10_000.0)
//!     .join_on_distincts("customers", "nations", 25.0, 25.0)
//!     .build()
//!     .unwrap();
//!
//! let model = MemoryCostModel::default();
//! let config = OptimizerConfig::new(Method::Iai).with_seed(7);
//! let result = optimize(&query, &model, &config);
//! assert!(result.cost.is_finite());
//! println!("{}", result.plan.to_tree().explain(&query));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod bound;
pub mod bushy;
pub mod bushy_search;
mod cached;
pub mod dp;
mod driver;
mod error;
pub mod eval;
mod ii;
mod methods;
mod movepath;
pub mod parallel;
pub mod prelude;
pub mod robust;
mod sa;
mod sampling;
pub mod serving;
pub mod trace;

pub use bushy_search::{
    bushy_gap_vs_dp, bushy_tree_cost, try_optimize_bushy, BushyIterativeImprovement,
    BushyOptimized, BushySimulatedAnnealing,
};
pub use cached::{
    optimize_batch_cached, optimize_batch_cached_routed, optimize_cached, optimize_cached_parallel,
    CacheOutcome,
};
pub use driver::{
    optimize, optimize_batch, try_optimize, try_optimize_parallel, BatchOptions, BatchReport,
    Optimized, OptimizerConfig, ServedVia,
};
pub use error::{Degradation, OptError};
pub use ii::IterativeImprovement;
pub use methods::{Method, MethodRunner};
pub use parallel::{Cooperation, Parallelism};
pub use robust::{recost_plan, regret_under, regret_under_parallel, RegretSample};
pub use sa::SimulatedAnnealing;
pub use sampling::RandomSampling;
pub use serving::{win_labels, win_slot, ServingCounters, ServingSnapshot};

// Re-export the component crates so downstream users need only `ljqo`.
pub use ljqo_cache as cache;
pub use ljqo_catalog as catalog;
pub use ljqo_cost as cost;
pub use ljqo_heuristics as heuristics;
pub use ljqo_plan as plan;
