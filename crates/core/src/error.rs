//! Typed optimizer errors and the degradation ladder.
//!
//! The driver treats every stage of optimization as fallible: the catalog
//! may carry nonsense statistics, a cost model may panic or emit `NaN`,
//! and a wall-clock deadline may expire before the configured method has
//! evaluated a single state. Instead of panicking, [`try_optimize`]
//! (see [`crate::optimize`]) walks a fallback ladder and reports how far
//! down it had to go; only when *every* rung fails does it return an
//! [`OptError`].
//!
//! [`try_optimize`]: crate::try_optimize

use ljqo_catalog::CatalogError;

/// Why optimization failed outright (no plan could be produced at all).
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The query's catalog statistics failed validation. Optimizing over
    /// invalid statistics would at best be garbage-in/garbage-out and at
    /// worst feed `NaN` into every comparison, so the driver revalidates
    /// up front and refuses.
    Catalog(CatalogError),
    /// One join-graph component defeated the configured method *and*
    /// every fallback (augmentation heuristic, cardinality-free
    /// structural order, random valid order). Reaching this means even
    /// panic-isolated plain graph traversal failed, which indicates a
    /// corrupted process rather than a bad query.
    NoValidPlan {
        /// Index of the failing component in `query.graph().components()`.
        component: usize,
    },
    /// An exact algorithm was asked to solve a component larger than its
    /// complexity admits (the bushy DP is `O(3^k)`; beyond
    /// [`BUSHY_MAX_RELATIONS`](crate::bushy::BUSHY_MAX_RELATIONS) a single
    /// call would outlast any budget). Callers degrade to local search
    /// instead of crashing.
    ComponentTooLarge {
        /// Relations in the offending component.
        n_relations: usize,
        /// The algorithm's hard limit.
        limit: usize,
    },
    /// A relation set handed to an exact algorithm as one "component" is
    /// not actually connected in the join graph, so no cross-product-free
    /// plan covers it. Component splitting happens upstream
    /// (`query.graph().components()`); seeing this means the caller
    /// skipped it.
    DisconnectedComponent {
        /// Relations in the offending set.
        n_relations: usize,
    },
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::Catalog(e) => write!(f, "invalid catalog: {e}"),
            OptError::NoValidPlan { component } => write!(
                f,
                "no valid join order could be produced for join-graph component {component} \
                 (method and all fallbacks failed)"
            ),
            OptError::ComponentTooLarge { n_relations, limit } => write!(
                f,
                "component has {n_relations} relations but the exact algorithm is limited \
                 to {limit} (use local search beyond that)"
            ),
            OptError::DisconnectedComponent { n_relations } => write!(
                f,
                "relation set of size {n_relations} is not a connected join-graph component: \
                 no cross-product-free plan covers it"
            ),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Catalog(e) => Some(e),
            OptError::NoValidPlan { .. }
            | OptError::ComponentTooLarge { .. }
            | OptError::DisconnectedComponent { .. } => None,
        }
    }
}

impl From<CatalogError> for OptError {
    fn from(e: CatalogError) -> Self {
        OptError::Catalog(e)
    }
}

/// How far down the fallback ladder the driver had to go for the worst
/// component. Ordered: a later variant is a deeper degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Degradation {
    /// The configured method produced the plan normally.
    None,
    /// The method panicked, ran out of wall-clock before evaluating any
    /// state, or produced no state; the augmentation heuristic supplied
    /// the plan for at least one component.
    Heuristic,
    /// The augmentation heuristic failed too (it reads the same catalog
    /// statistics that defeated the method); the cardinality-free
    /// structural order supplied the plan for at least one component.
    /// Generation consults no statistics, so this rung survives missing
    /// or non-finite stats; only the *costing* of the order is
    /// best-effort (`f64::MAX` when the model cannot price it).
    CardFree,
    /// Even structural ordering failed; a random valid join order was
    /// used for at least one component. The plan is valid but its
    /// quality is whatever chance provides.
    RandomOrder,
}

impl Degradation {
    /// Short lowercase label for logs and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Degradation::None => "none",
            Degradation::Heuristic => "heuristic",
            Degradation::CardFree => "card-free",
            Degradation::RandomOrder => "random-order",
        }
    }

    /// Whether any degradation occurred.
    pub fn is_degraded(self) -> bool {
        self != Degradation::None
    }
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_levels_are_ordered() {
        assert!(Degradation::None < Degradation::Heuristic);
        assert!(Degradation::Heuristic < Degradation::CardFree);
        assert!(Degradation::CardFree < Degradation::RandomOrder);
        assert!(!Degradation::None.is_degraded());
        assert!(Degradation::Heuristic.is_degraded());
        assert!(Degradation::CardFree.is_degraded());
    }

    #[test]
    fn errors_render_their_cause() {
        let e = OptError::from(ljqo_catalog::CatalogError::Empty);
        assert!(e.to_string().contains("invalid catalog"));
        let e = OptError::NoValidPlan { component: 3 };
        assert!(e.to_string().contains("component 3"));
    }
}
