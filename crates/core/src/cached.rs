//! Cache-aware serving drivers.
//!
//! Wires the plan cache (`ljqo-cache`) through the optimization path:
//! [`optimize_cached`] consults a shared [`PlanCache`] before paying the
//! cold combinatorial search, and [`optimize_batch_cached`] additionally
//! dedupes fingerprint-equal queries *within* a batch so each equivalence
//! class is solved at most once.
//!
//! # Safety of a warm hit
//!
//! A cached entry stores join orders in canonical coordinates plus the
//! costs they were found at. Serving from it never trusts the entry:
//!
//! 1. every segment is rehydrated through the *current* query's canonical
//!    mapping, with out-of-range indices rejected;
//! 2. the rehydrated segments must partition the query's relations
//!    exactly (no duplicates, no gaps) and each multi-relation segment
//!    must be a valid order of the live join graph;
//! 3. every segment is re-priced under the live catalog and cost model
//!    (panic-isolated).
//!
//! If the fresh prices agree with the stored ones
//! ([`ljqo_cost::costs_agree`]) the stored costs are kept, so the served
//! result is **bit-identical** to the cold solve that produced the entry
//! (plan assembly is a pure function of the `(order, cost)` pairs). If
//! they differ materially — the same fingerprint covering a
//! within-bucket-different query, or catalog statistics drifting under a
//! resident entry — the plan structure is reused at freshly computed
//! costs ([`CacheOutcome::HitRecosted`]). Entries that fail any check are
//! invalidated and the query falls through to the cold path
//! ([`CacheOutcome::Stale`]), so a poisoned cache can cost latency but
//! never correctness.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ljqo_cache::{
    fingerprint, CachedPlan, CachedSegment, FingerprintConfig, Fingerprinted, PlanCache,
};
use ljqo_catalog::Query;
use ljqo_cost::{costs_agree, sanitize_cost, CostModel, Deadline};
use ljqo_plan::validity::is_valid;
use ljqo_plan::JoinOrder;

use crate::driver::{
    assemble_plan, BatchOptions, BatchReport, Optimized, OptimizerConfig, ServedVia,
};
use crate::error::{Degradation, OptError};
use crate::parallel::{splitmix, Parallelism};
use crate::{try_optimize, try_optimize_parallel};

/// How a cache-aware driver answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache; fresh per-segment prices agreed with the
    /// stored ones, so the result is bit-identical to the cold solve that
    /// produced the entry.
    Hit,
    /// Served from the cache structurally, but re-priced: the entry's
    /// stored costs disagreed with the live catalog (within-bucket
    /// statistics drift), so the returned cost is freshly computed.
    HitRecosted,
    /// A resident entry failed validity re-checks against the live
    /// catalog; it was invalidated and the query was solved cold.
    Stale,
    /// No resident entry; the query was solved cold.
    Miss,
}

impl CacheOutcome {
    /// Whether the plan structure came from the cache.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit | CacheOutcome::HitRecosted)
    }

    /// Stable lower-case name, for JSON output and logs.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::HitRecosted => "hit_recosted",
            CacheOutcome::Stale => "stale",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Try to serve `query` from `entry`. `None` means the entry failed a
/// validity re-check (structurally foreign or unpriceable under the live
/// catalog) and must be treated as stale.
fn serve_from_entry(
    query: &Query,
    model: &dyn CostModel,
    fp: &Fingerprinted,
    entry: &CachedPlan,
) -> Option<(Optimized, CacheOutcome)> {
    if entry.segments.is_empty() {
        return None;
    }
    let n = query.n_relations();
    let mut seen = vec![false; n];
    let mut orders: Vec<Vec<ljqo_catalog::RelId>> = Vec::with_capacity(entry.segments.len());
    for seg in &entry.segments {
        let order = fp.rehydrate_order(&seg.canon_order)?;
        for r in &order {
            if std::mem::replace(&mut seen[r.index()], true) {
                return None; // duplicate relation across/within segments
            }
        }
        if order.len() > 1 && !is_valid(query.graph(), &order) {
            return None;
        }
        orders.push(order);
    }
    if !seen.iter().all(|&s| s) {
        return None; // entry does not cover every relation
    }

    // Re-price every segment under the live catalog; a model fault or a
    // saturated price marks the entry stale rather than serving garbage.
    let mut agree = true;
    let mut segments: Vec<(JoinOrder, f64)> = Vec::with_capacity(orders.len());
    for (order, seg) in orders.into_iter().zip(&entry.segments) {
        let fresh = catch_unwind(AssertUnwindSafe(|| {
            sanitize_cost(model.order_cost(query, &order))
        }))
        .ok()?;
        if !fresh.is_finite() || fresh == f64::MAX {
            return None;
        }
        agree &= costs_agree(fresh, seg.cost);
        segments.push((JoinOrder::new(order), fresh));
    }
    let outcome = if agree {
        // Keep the stored prices: assembly is deterministic in the
        // `(order, cost)` pairs, so the total is bit-identical to the
        // cold solve that produced this entry.
        for (s, seg) in segments.iter_mut().zip(&entry.segments) {
            s.1 = seg.cost;
        }
        CacheOutcome::Hit
    } else {
        CacheOutcome::HitRecosted
    };

    let n_segments = segments.len() as u64;
    let (plan, total_cost, segment_costs) = assemble_plan(query, model, segments);
    if !total_cost.is_finite() || total_cost == f64::MAX {
        return None;
    }
    Some((
        Optimized {
            plan,
            cost: total_cost,
            segment_costs,
            units_used: n_segments,
            n_evals: n_segments,
            degradation: Degradation::None,
            deadline_expired: false,
            workers_failed: 0,
            winner: None,
        },
        outcome,
    ))
}

/// Build the cache entry for a cold result, in canonical coordinates.
/// The producer credit prefers the portfolio winner when the cold path
/// was a multi-method parallel run; sequential solves credit the
/// configured method as before.
fn entry_for(fp: &Fingerprinted, result: &Optimized, config: &OptimizerConfig) -> CachedPlan {
    CachedPlan {
        segments: result
            .plan
            .segments
            .iter()
            .zip(&result.segment_costs)
            .map(|(order, &cost)| CachedSegment {
                canon_order: fp.canonize_order(order.rels()),
                cost,
            })
            .collect(),
        total_cost: result.cost,
        producer: result
            .winner
            .map(|m| m.name())
            .unwrap_or(config.method.name()),
    }
}

/// Whether a cold result is worth caching: only full-quality plans are
/// stored, so a degraded or deadline-truncated answer can never be
/// replayed to future queries.
fn cacheable(result: &Optimized) -> bool {
    !result.degradation.is_degraded() && !result.deadline_expired && result.cost.is_finite()
}

/// Look up `query` in `cache`; on a miss (or a stale entry) run `cold`
/// and insert the result if it is full-quality. The shared core of the
/// cached drivers.
fn optimize_cached_with(
    query: &Query,
    model: &dyn CostModel,
    config: &OptimizerConfig,
    cache: &PlanCache,
    fp_config: &FingerprintConfig,
    cold: impl FnOnce() -> Result<Optimized, OptError>,
) -> Result<(Optimized, CacheOutcome), OptError> {
    query.validate()?;
    let fp = fingerprint(query, fp_config);
    let mut outcome = CacheOutcome::Miss;
    if let Some(entry) = cache.get(fp.fingerprint()) {
        match serve_from_entry(query, model, &fp, &entry) {
            Some(served) => return Ok(served),
            None => {
                cache.invalidate(fp.fingerprint());
                outcome = CacheOutcome::Stale;
            }
        }
    }
    let result = cold()?;
    if cacheable(&result) {
        cache.insert(fp.fingerprint().clone(), entry_for(&fp, &result, config));
    }
    Ok((result, outcome))
}

/// [`try_optimize`](crate::try_optimize) behind a plan cache.
///
/// On a warm hit the cached join order is re-validated and re-priced
/// against the live catalog (see the module docs for the exact
/// contract); on a miss the cold result is inserted if it is
/// full-quality (no degradation, no deadline expiry). The returned
/// [`CacheOutcome`] says which path answered.
pub fn optimize_cached(
    query: &Query,
    model: &dyn CostModel,
    config: &OptimizerConfig,
    cache: &PlanCache,
    fp_config: &FingerprintConfig,
) -> Result<(Optimized, CacheOutcome), OptError> {
    optimize_cached_with(query, model, config, cache, fp_config, || {
        try_optimize(query, model, config)
    })
}

/// [`try_optimize_parallel`](crate::try_optimize_parallel) behind a plan
/// cache: identical serving contract to [`optimize_cached`], with the
/// cold path searched by a parallel worker pool.
pub fn optimize_cached_parallel(
    query: &Query,
    model: &(dyn CostModel + Sync),
    config: &OptimizerConfig,
    parallelism: &Parallelism,
    cache: &PlanCache,
    fp_config: &FingerprintConfig,
) -> Result<(Optimized, CacheOutcome), OptError> {
    optimize_cached_with(query, model, config, cache, fp_config, || {
        try_optimize_parallel(query, model, config, parallelism)
    })
}

/// [`optimize_batch`](crate::optimize_batch) behind a plan cache, with
/// in-batch dedup.
///
/// Queries are fingerprinted up front and grouped; each group is served
/// by one pool thread:
///
/// * a group whose fingerprint is already resident serves every member
///   from the cache (counted in [`BatchReport::n_cache_hits`]);
/// * otherwise the lowest-index member is solved cold — with the *same*
///   per-query seed `splitmix(config.seed ⊕ index)` the plain batch
///   driver would use, so representatives are bit-identical to an
///   uncached run — and the remaining members reuse the entry
///   ([`BatchReport::n_dedup_reuses`]);
/// * any member that cannot be served from the entry (stale under its
///   own statistics) falls back to its own cold solve, again with its
///   plain-batch seed.
///
/// So a batch of `Q` queries with `F` distinct fingerprints performs at
/// most `F` cold solves (plus per-member fallbacks, which only fire on
/// validity failures), and [`BatchReport::n_cold_solves`] says how many
/// actually ran.
pub fn optimize_batch_cached(
    queries: &[Query],
    model: &(dyn CostModel + Sync),
    config: &OptimizerConfig,
    options: &BatchOptions,
    cache: &PlanCache,
    fp_config: &FingerprintConfig,
) -> BatchReport {
    optimize_batch_cached_with(
        queries,
        model,
        config,
        options,
        cache,
        fp_config,
        &|q, cfg| try_optimize(q, model, cfg),
    )
}

/// [`optimize_batch_cached`] with each cold solve searched by
/// [`try_optimize_parallel`](crate::try_optimize_parallel) under
/// `parallelism` — including, when
/// [`Parallelism::router`](crate::Parallelism) is set, the learned
/// per-class budget split with online feedback. The caching, dedup,
/// seeding, and reporting contracts are identical to
/// [`optimize_batch_cached`]; only the cold path differs.
pub fn optimize_batch_cached_routed(
    queries: &[Query],
    model: &(dyn CostModel + Sync),
    config: &OptimizerConfig,
    options: &BatchOptions,
    cache: &PlanCache,
    fp_config: &FingerprintConfig,
    parallelism: &Parallelism,
) -> BatchReport {
    optimize_batch_cached_with(
        queries,
        model,
        config,
        options,
        cache,
        fp_config,
        &|q, cfg| try_optimize_parallel(q, model, cfg, parallelism),
    )
}

/// The shared batch body: `cold` is the per-query cold solver (already
/// closed over the model), invoked with the member's derived config.
fn optimize_batch_cached_with(
    queries: &[Query],
    model: &(dyn CostModel + Sync),
    config: &OptimizerConfig,
    options: &BatchOptions,
    cache: &PlanCache,
    fp_config: &FingerprintConfig,
    cold: ColdSolver<'_>,
) -> BatchReport {
    let started = Instant::now();

    // Fingerprint everything up front (cheap, linear in query size) and
    // group indices by fingerprint. Invalid queries keep their error and
    // never reach the pool.
    let mut prints: Vec<Option<Fingerprinted>> = Vec::with_capacity(queries.len());
    let mut errors: Vec<Option<OptError>> = Vec::with_capacity(queries.len());
    for q in queries {
        match q.validate() {
            Ok(()) => {
                prints.push(Some(fingerprint(q, fp_config)));
                errors.push(None);
            }
            Err(e) => {
                prints.push(None);
                errors.push(Some(OptError::from(e)));
            }
        }
    }
    let mut groups: HashMap<&ljqo_cache::QueryFingerprint, Vec<usize>> = HashMap::new();
    for (i, fp) in prints.iter().enumerate() {
        if let Some(fp) = fp {
            groups.entry(fp.fingerprint()).or_default().push(i);
        }
    }
    // Deterministic group order (by lowest member index) for the pool.
    let mut group_list: Vec<Vec<usize>> = groups.into_values().collect();
    group_list.sort_by_key(|g| g[0]);

    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        options.threads
    }
    .min(group_list.len().max(1))
    .max(1);

    let cold_config = |i: usize| {
        let mut cfg = *config;
        cfg.seed = splitmix(config.seed ^ i as u64);
        if let Some(d) = options.per_query_deadline {
            cfg.deadline = Some(Deadline::after(d));
        }
        cfg
    };

    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, Served)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, Served)> = Vec::new();
                    loop {
                        let g = next.fetch_add(1, Ordering::Relaxed);
                        let Some(group) = group_list.get(g) else {
                            break;
                        };
                        serve_group(
                            queries,
                            model,
                            cache,
                            &prints,
                            group,
                            &cold_config,
                            cold,
                            &mut out,
                        );
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("cold paths are panic-isolated internally"))
            .collect()
    });

    // Queries that failed catalog validation never entered a group.
    for (i, err) in errors.into_iter().enumerate() {
        if let Some(e) = err {
            collected.push((
                i,
                Served {
                    result: Err(e),
                    outcome: CacheOutcome::Miss,
                    reused: false,
                    producer: config.method.name(),
                },
            ));
        }
    }
    collected.sort_by_key(|&(i, _)| i);

    let mut report = BatchReport {
        results: Vec::with_capacity(queries.len()),
        outcomes: Vec::with_capacity(queries.len()),
        n_failed: 0,
        n_degraded: 0,
        n_deadline_expired: 0,
        n_cold_solves: 0,
        n_cache_hits: 0,
        n_dedup_reuses: 0,
        units_used: 0,
        wall: Duration::ZERO,
    };
    for (_, served) in collected {
        match &served.result {
            Ok(r) => {
                report.units_used += r.units_used;
                if r.degradation.is_degraded() {
                    report.n_degraded += 1;
                }
                if r.deadline_expired {
                    report.n_deadline_expired += 1;
                }
                match served.outcome {
                    CacheOutcome::Hit | CacheOutcome::HitRecosted if served.reused => {
                        report.n_dedup_reuses += 1
                    }
                    CacheOutcome::Hit | CacheOutcome::HitRecosted => report.n_cache_hits += 1,
                    CacheOutcome::Stale | CacheOutcome::Miss => report.n_cold_solves += 1,
                }
            }
            Err(_) => report.n_failed += 1,
        }
        report.outcomes.push(ServedVia {
            outcome: served.outcome,
            producer: served.producer,
        });
        report.results.push(served.result);
    }
    report.wall = started.elapsed();
    report
}

/// One query's answer within a cached batch, tagged with how it was
/// produced (for the [`BatchReport`] counters).
struct Served {
    result: Result<Optimized, OptError>,
    outcome: CacheOutcome,
    /// Whether a hit reused an entry produced by this batch's own cold
    /// solve (a dedup reuse) rather than a pre-existing one.
    reused: bool,
    /// Method credited with the served plan (the entry's producer on a
    /// hit, the configured method on a cold solve).
    producer: &'static str,
}

/// The cold-path solver a cached batch runs for a group representative:
/// sequential [`try_optimize`] for [`optimize_batch_cached`], the
/// parallel driver for [`optimize_batch_cached_routed`].
type ColdSolver<'a> = &'a (dyn Fn(&Query, &OptimizerConfig) -> Result<Optimized, OptError> + Sync);

/// Serve one fingerprint group: at most one cold solve, members reuse
/// the resulting entry (or fall back to their own cold solve).
#[allow(clippy::too_many_arguments)]
fn serve_group(
    queries: &[Query],
    model: &(dyn CostModel + Sync),
    cache: &PlanCache,
    prints: &[Option<Fingerprinted>],
    group: &[usize],
    cold_config: &(dyn Fn(usize) -> OptimizerConfig + Sync),
    cold: ColdSolver<'_>,
    out: &mut Vec<(usize, Served)>,
) {
    let mut entry: Option<CachedPlan> = None;
    let mut from_batch = false; // entry produced by this group's own cold solve
    for (pos, &i) in group.iter().enumerate() {
        let fp = prints[i].as_ref().expect("grouped queries fingerprinted");
        let query = &queries[i];
        // Representative (first member): consult the shared cache.
        if pos == 0 {
            entry = cache.get(fp.fingerprint());
        }
        if let Some(e) = &entry {
            if let Some((result, outcome)) = serve_from_entry(query, model, fp, e) {
                out.push((
                    i,
                    Served {
                        result: Ok(result),
                        outcome,
                        reused: from_batch,
                        producer: e.producer,
                    },
                ));
                continue;
            }
            // Stale for this member. Only evict the shared entry if it
            // came from the cache; a sibling-produced entry may still
            // fit other members.
            if !from_batch {
                cache.invalidate(fp.fingerprint());
                entry = None;
            }
        }
        // Cold solve with the exact seed the plain batch driver would use
        // for this index.
        let cfg = cold_config(i);
        let result = cold(query, &cfg);
        let mut producer = cfg.method.name();
        if let Ok(r) = &result {
            if let Some(m) = r.winner {
                producer = m.name();
            }
            if cacheable(r) {
                let e = entry_for(fp, r, &cfg);
                cache.insert(fp.fingerprint().clone(), e.clone());
                if entry.is_none() {
                    entry = Some(e);
                    from_batch = true;
                }
            }
        }
        out.push((
            i,
            Served {
                result,
                outcome: CacheOutcome::Miss,
                reused: false,
                producer,
            },
        ));
    }
}
