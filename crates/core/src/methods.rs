//! The nine optimization methods of paper §4.4.

use rand::Rng;

use ljqo_catalog::RelId;
use ljqo_cost::Evaluator;
use ljqo_heuristics::{AugmentationHeuristic, CardFreeHeuristic, KbzHeuristic, LocalImprovement};
use ljqo_plan::{random_valid_order, MoveGenerator};

use crate::ii::IterativeImprovement;
use crate::sa::SimulatedAnnealing;

/// The methods compared in the paper's Figure 4 (and the five survivors
/// compared in Figures 5–7 and Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Iterative improvement from random start states.
    Ii,
    /// Simulated annealing from a random start state.
    Sa,
    /// SA started from one augmentation state.
    Saa,
    /// SA started from the KBZ state.
    Sak,
    /// Iterative improvement seeded by the augmentation states, then by
    /// random states. The paper's overall winner.
    Iai,
    /// Iterative improvement seeded by the KBZ per-root states, then by
    /// random states.
    Iki,
    /// Like IAI, but after the augmentation states are exhausted, local
    /// improvement is applied to the best local minimum.
    Ial,
    /// All augmentation states first, then iterative improvement from
    /// random states. The paper's winner at small time limits (≲ 1.8N²).
    Agi,
    /// The KBZ states first, then iterative improvement from random
    /// states.
    Kbi,
    /// Cardinality-free structural ordering (after Simpli-Squared,
    /// arxiv 2111.00163): one deterministic order from the join graph
    /// alone, no statistics consulted. Not one of the paper's nine — it
    /// exists for the robustness study, where it is immune to estimation
    /// error by construction.
    Cardfree,
    /// Iterative improvement over **bushy** trees (tree moves with
    /// path-to-root incremental re-costing; see `crate::bushy_search`).
    /// Not one of the paper's nine — it attacks the paper's open problem
    /// of validating the linear-tree restriction. Under the linear
    /// drivers this runs plain II (the honest linear restriction of the
    /// same search).
    BushyIi,
    /// Simulated annealing over **bushy** trees. Like [`Method::BushyIi`],
    /// a post-paper method; under the linear drivers it runs plain SA.
    BushySa,
}

impl Method {
    /// All nine methods, in the paper's presentation order.
    pub const ALL: [Method; 9] = [
        Method::Ii,
        Method::Sa,
        Method::Saa,
        Method::Sak,
        Method::Iai,
        Method::Iki,
        Method::Ial,
        Method::Agi,
        Method::Kbi,
    ];

    /// The five methods the paper retains after Figure 4.
    pub const TOP_FIVE: [Method; 5] = [
        Method::Iai,
        Method::Ial,
        Method::Agi,
        Method::Kbi,
        Method::Ii,
    ];

    /// The paper's name for the method.
    pub fn name(self) -> &'static str {
        match self {
            Method::Ii => "II",
            Method::Sa => "SA",
            Method::Saa => "SAA",
            Method::Sak => "SAK",
            Method::Iai => "IAI",
            Method::Iki => "IKI",
            Method::Ial => "IAL",
            Method::Agi => "AGI",
            Method::Kbi => "KBI",
            Method::Cardfree => "CARDFREE",
            Method::BushyIi => "BUSHYII",
            Method::BushySa => "BUSHYSA",
        }
    }

    /// Parse a method name (case-insensitive). Accepts the paper's nine
    /// names plus the post-paper `CARDFREE`, `BUSHYII` and `BUSHYSA`.
    pub fn parse(s: &str) -> Option<Method> {
        Method::ALL
            .into_iter()
            .chain([Method::Cardfree, Method::BushyIi, Method::BushySa])
            .find(|m| m.name().eq_ignore_ascii_case(s))
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared configuration for running any [`Method`] on one component.
///
/// The best state found is tracked by the [`Evaluator`]; a runner mutates
/// no state of its own and can be reused across queries and methods.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MethodRunner {
    /// Iterative improvement parameters.
    pub ii: IterativeImprovement,
    /// Simulated annealing parameters.
    pub sa: SimulatedAnnealing,
    /// Augmentation heuristic (criterion 3 by default, the Table 1
    /// winner).
    pub augmentation: AugmentationHeuristic,
    /// KBZ heuristic (selectivity MST weights by default, the Table 2
    /// winner).
    pub kbz: KbzHeuristic,
    /// Bushy iterative improvement parameters (used by the bushy-space
    /// drivers; see [`MethodRunner::run_bushy`]).
    pub bushy_ii: crate::bushy_search::BushyIterativeImprovement,
    /// Bushy simulated annealing parameters.
    pub bushy_sa: crate::bushy_search::BushySimulatedAnnealing,
}

impl MethodRunner {
    /// Run `method` on one join-graph component until the evaluator's
    /// budget is exhausted (or the method has nothing further to try).
    /// The result is read from `ev.best()`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        method: Method,
        ev: &mut Evaluator<'_>,
        component: &[RelId],
        rng: &mut R,
    ) {
        if component.len() == 1 {
            ev.cost_slice(component);
            return;
        }
        match method {
            Method::Ii => self.ii.run(ev, component, rng),
            Method::Sa => self.sa.run(ev, component, rng),
            Method::Saa => {
                // One augmentation state (smallest first relation) seeds SA.
                let firsts = AugmentationHeuristic::first_relations(ev.query(), component);
                ev.charge(component.len() as u64);
                let start = self.augmentation.generate(ev.query(), component, firsts[0]);
                self.sa.anneal(ev, start, rng);
            }
            Method::Sak => {
                match self.kbz.generate(ev, component) {
                    Some(start) => self.sa.anneal(ev, start, rng),
                    // KBZ never completed a root within budget; fall back
                    // to a random start for the (tiny) remaining budget.
                    None => self.sa.run(ev, component, rng),
                }
            }
            Method::Iai => {
                let mut gen = MoveGenerator::new(ev.query().n_relations(), self.ii.move_set);
                for first in AugmentationHeuristic::first_relations(ev.query(), component) {
                    if ev.exhausted() {
                        return;
                    }
                    ev.charge(component.len() as u64);
                    let mut order = self.augmentation.generate(ev.query(), component, first);
                    self.ii.descend(ev, &mut gen, &mut order, rng);
                }
                self.ii.run(ev, component, rng);
            }
            Method::Iki => {
                let mut gen = MoveGenerator::new(ev.query().n_relations(), self.ii.move_set);
                for mut order in self.kbz.generate_all_roots(ev, component) {
                    if ev.exhausted() {
                        return;
                    }
                    self.ii.descend(ev, &mut gen, &mut order, rng);
                }
                self.ii.run(ev, component, rng);
            }
            Method::Ial => {
                let mut gen = MoveGenerator::new(ev.query().n_relations(), self.ii.move_set);
                for first in AugmentationHeuristic::first_relations(ev.query(), component) {
                    if ev.exhausted() {
                        return;
                    }
                    ev.charge(component.len() as u64);
                    let mut order = self.augmentation.generate(ev.query(), component, first);
                    self.ii.descend(ev, &mut gen, &mut order, rng);
                }
                // Local improvement on the best of the local minima, with
                // the ladder strategy the remaining budget affords.
                while !ev.exhausted() {
                    let Some((best, best_cost)) = ev.best() else {
                        break;
                    };
                    let Some(strategy) =
                        LocalImprovement::best_for_budget(component.len(), ev.remaining())
                    else {
                        break;
                    };
                    let mut order = best.clone();
                    strategy.improve(ev, &mut order);
                    if ev.best_cost() >= best_cost {
                        break; // fixpoint: nothing left for LI to find
                    }
                }
                // Any leftover budget goes to further II runs.
                self.ii.run(ev, component, rng);
            }
            Method::Agi => {
                // All augmentation states first, evaluated but NOT
                // descended from...
                for first in AugmentationHeuristic::first_relations(ev.query(), component) {
                    if ev.exhausted() {
                        return;
                    }
                    ev.charge(component.len() as u64);
                    let order = self.augmentation.generate(ev.query(), component, first);
                    ev.cost(&order);
                }
                // ...then plain II from random states.
                self.ii.run(ev, component, rng);
            }
            Method::Kbi => {
                let _ = self.kbz.generate_all_roots(ev, component);
                self.ii.run(ev, component, rng);
            }
            Method::Cardfree => {
                // One structural order, charged like any constructive
                // heuristic (N units per generated order), evaluated
                // once. No RNG, no statistics: the whole method is a
                // pure function of the join graph.
                ev.charge(component.len() as u64);
                let order = CardFreeHeuristic.generate(ev.query().graph(), component);
                ev.cost(&order);
            }
            // Under the *linear* drivers the bushy methods run their
            // honest linear restriction; the tree search itself lives in
            // `MethodRunner::run_bushy` (crate::bushy_search).
            Method::BushyIi => self.ii.run(ev, component, rng),
            Method::BushySa => self.sa.run(ev, component, rng),
        }
    }

    /// Fallback helper shared by tests: a single random state, so `best()`
    /// is never empty even under a one-unit budget.
    pub fn seed_random<R: Rng + ?Sized>(
        &self,
        ev: &mut Evaluator<'_>,
        component: &[RelId],
        rng: &mut R,
    ) {
        let order = random_valid_order(ev.query().graph(), component, rng);
        ev.cost(&order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::{Query, QueryBuilder};
    use ljqo_cost::MemoryCostModel;
    use ljqo_plan::validity::is_valid;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .relation("f", 9)
            .relation("g", 230)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .join("e", "f", 0.2)
            .join("f", "g", 0.004)
            .join("b", "e", 0.03)
            .build()
            .unwrap()
    }

    #[test]
    fn every_method_produces_a_valid_best_state() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        for method in Method::ALL {
            let mut ev = Evaluator::with_budget(&q, &model, 4_000);
            let mut rng = SmallRng::seed_from_u64(11);
            runner.run(method, &mut ev, &comp, &mut rng);
            let (best, cost) = ev
                .best()
                .unwrap_or_else(|| panic!("{method} produced no state"));
            assert_eq!(best.len(), comp.len(), "{method}");
            assert!(is_valid(q.graph(), best.rels()), "{method}");
            assert!(cost.is_finite(), "{method}");
        }
    }

    #[test]
    fn methods_never_exceed_budget_by_more_than_one_step() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        for method in Method::ALL {
            let budget = 500;
            let mut ev = Evaluator::with_budget(&q, &model, budget);
            let mut rng = SmallRng::seed_from_u64(3);
            runner.run(method, &mut ev, &comp, &mut rng);
            // A method may overrun by at most one indivisible step (one
            // heuristic generation + evaluation, or one move proposal with
            // its validity-check retries).
            let slack = comp.len() as u64 + 64 + 4 * q.n_relations() as u64;
            assert!(
                ev.used() <= budget + slack,
                "{method} used {} of {budget}",
                ev.used()
            );
        }
    }

    #[test]
    fn heuristic_seeded_methods_beat_or_match_their_seeds_quickly() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();

        // Cost of the single best augmentation state.
        let mut ev_seed = Evaluator::new(&q, &model);
        let mut seed_best = f64::INFINITY;
        for first in AugmentationHeuristic::first_relations(&q, &comp) {
            let o = runner.augmentation.generate(&q, &comp, first);
            seed_best = seed_best.min(ev_seed.cost(&o));
        }

        let mut ev = Evaluator::with_budget(&q, &model, 10_000);
        let mut rng = SmallRng::seed_from_u64(5);
        runner.run(Method::Iai, &mut ev, &comp, &mut rng);
        assert!(
            ev.best_cost() <= seed_best,
            "IAI must not lose to its seeds"
        );
    }

    #[test]
    fn singleton_component_handled_by_all_methods() {
        let q = query();
        let model = MemoryCostModel::default();
        let runner = MethodRunner::default();
        for method in Method::ALL {
            let mut ev = Evaluator::with_budget(&q, &model, 100);
            let mut rng = SmallRng::seed_from_u64(1);
            runner.run(method, &mut ev, &[RelId(3)], &mut rng);
            assert_eq!(ev.best().unwrap().0.rels(), &[RelId(3)], "{method}");
        }
    }

    #[test]
    fn parse_and_names_roundtrip() {
        for m in Method::ALL
            .into_iter()
            .chain([Method::Cardfree, Method::BushyIi, Method::BushySa])
        {
            assert_eq!(Method::parse(m.name()), Some(m));
            assert_eq!(Method::parse(&m.name().to_lowercase()), Some(m));
        }
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn top_five_is_subset_of_all() {
        for m in Method::TOP_FIVE {
            assert!(Method::ALL.contains(&m));
        }
    }

    #[test]
    fn cardfree_is_not_one_of_the_papers_nine() {
        // `ALL` is the paper's set; the structural method rides alongside
        // so figure-reproduction sweeps stay faithful.
        assert!(!Method::ALL.contains(&Method::Cardfree));
        assert_eq!(Method::parse("cardfree"), Some(Method::Cardfree));
    }

    #[test]
    fn bushy_methods_are_not_among_the_papers_nine_but_run_linear() {
        assert!(!Method::ALL.contains(&Method::BushyIi));
        assert!(!Method::ALL.contains(&Method::BushySa));
        // Under the linear runner they are the honest linear restriction:
        // a valid order comes back, budget respected.
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        for method in [Method::BushyIi, Method::BushySa] {
            let mut ev = Evaluator::with_budget(&q, &model, 2_000);
            let mut rng = SmallRng::seed_from_u64(9);
            runner.run(method, &mut ev, &comp, &mut rng);
            let (best, cost) = ev
                .best()
                .unwrap_or_else(|| panic!("{method} produced no state"));
            assert!(is_valid(q.graph(), best.rels()), "{method}");
            assert!(cost.is_finite(), "{method}");
        }
    }

    #[test]
    fn cardfree_produces_a_valid_state_within_budget() {
        let q = query();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let model = MemoryCostModel::default();
        let runner = MethodRunner::default();
        let mut ev = Evaluator::with_budget(&q, &model, 100);
        let mut rng = SmallRng::seed_from_u64(4);
        runner.run(Method::Cardfree, &mut ev, &comp, &mut rng);
        let (best, cost) = ev.best().expect("cardfree produced no state");
        assert_eq!(best.len(), comp.len());
        assert!(is_valid(q.graph(), best.rels()));
        assert!(cost.is_finite());
        // One N-unit generation plus one evaluation.
        assert!(ev.used() <= comp.len() as u64 + 2, "used {}", ev.used());
    }

    #[test]
    fn cardfree_is_rng_independent() {
        let q = query();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let model = MemoryCostModel::default();
        let runner = MethodRunner::default();
        let run = |seed: u64| {
            let mut ev = Evaluator::with_budget(&q, &model, 100);
            let mut rng = SmallRng::seed_from_u64(seed);
            runner.run(Method::Cardfree, &mut ev, &comp, &mut rng);
            ev.best().map(|(o, c)| (o.clone(), c)).unwrap()
        };
        assert_eq!(run(1), run(999));
    }
}
