//! End-to-end optimization driver.
//!
//! Handles what the per-component methods do not: splitting a query into
//! join-graph components, allotting the deterministic budget, running the
//! chosen method per component, and assembling the final [`Plan`] with
//! cross products postponed to the end (the paper's heuristic for
//! disconnected join graphs).
//!
//! The driver is hardened against misbehaving components: each method run
//! is panic-isolated with `catch_unwind`, a wall-clock [`Deadline`] can
//! cap the search regardless of the unit budget, and when a component's
//! method yields nothing the driver walks a fallback ladder (augmentation
//! heuristic, then the cardinality-free structural order, then a random
//! valid order) so a valid plan is returned whenever one exists — flagged
//! with the [`Degradation`] level reached.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo_catalog::{Query, RelId};
use ljqo_cost::estimate::{clamp_card, final_result_size};
use ljqo_cost::{
    sanitize_cost, BudgetSchedule, CostModel, Deadline, Evaluator, JoinCtx, TimeLimit,
};
use ljqo_heuristics::{AugmentationHeuristic, CardFreeHeuristic};
use ljqo_plan::validity::is_valid;
use ljqo_plan::{random_valid_order, JoinOrder, Plan};

use crate::error::{Degradation, OptError};
use crate::methods::{Method, MethodRunner};
use crate::parallel::{
    run_portfolio, run_portfolio_robust, run_portfolio_robust_weighted, run_portfolio_weighted,
    splitmix, ParallelOptions, Parallelism,
};

/// Configuration for [`optimize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Which of the paper's nine methods to run.
    pub method: Method,
    /// The time limit `τ·N²` (the paper sweeps `τ` from 0.3 to 9).
    pub time_limit: TimeLimit,
    /// Budget calibration: units of work per `N²` (see `ljqo-cost`).
    pub kappa: f64,
    /// How the budget grows with query size (see
    /// [`BudgetSchedule`]). [`BudgetSchedule::Quadratic`] (the default)
    /// reproduces the paper's `τ·N²·κ` rule bit-for-bit; the sublinear
    /// schedules keep planning time sane in the `N = 100..1000` regime.
    pub schedule: BudgetSchedule,
    /// RNG seed; runs are fully deterministic given the seed.
    pub seed: u64,
    /// Early stopping: stop a component's search once the best solution is
    /// within this relative factor of the cost model's lower bound (paper
    /// §3: stop "when we are sufficiently close to the lower bound").
    /// `None` disables early stopping. `Some(0.1)` stops within 10%.
    pub early_stop: Option<f64>,
    /// Optional wall-clock deadline composing with the unit budget: the
    /// search stops at whichever bound trips first. Unlike the unit
    /// budget, a deadline makes runs machine-dependent; it exists so a
    /// caller with a latency envelope always gets *a* plan back.
    pub deadline: Option<Deadline>,
    /// Method parameters.
    pub runner: MethodRunner,
}

impl OptimizerConfig {
    /// A configuration with the paper's most generous time limit (`9N²`)
    /// and default calibration.
    pub fn new(method: Method) -> Self {
        OptimizerConfig {
            method,
            time_limit: TimeLimit::of(9.0),
            kappa: 5.0,
            schedule: BudgetSchedule::Quadratic,
            seed: 0,
            early_stop: None,
            deadline: None,
            runner: MethodRunner::default(),
        }
    }

    /// Set the time limit multiplier `τ`.
    #[must_use]
    pub fn with_time_limit(mut self, tau: f64) -> Self {
        self.time_limit = TimeLimit::of(tau);
        self
    }

    /// Set the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the budget calibration constant.
    #[must_use]
    pub fn with_kappa(mut self, kappa: f64) -> Self {
        self.kappa = kappa;
        self
    }

    /// Set the budget growth schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: BudgetSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Total budget units for a query with `n` joins: the configured
    /// [`BudgetSchedule`] applied to this config's `τ` and `κ`. Every
    /// entry point (linear, bushy, parallel, cached) derives its budget
    /// from this one place.
    pub fn budget_units(&self, n_joins: usize) -> u64 {
        self.schedule.units(&self.time_limit, n_joins, self.kappa)
    }

    /// Enable early stopping within `epsilon` of the model's lower bound.
    #[must_use]
    pub fn with_early_stop(mut self, epsilon: f64) -> Self {
        self.early_stop = Some(epsilon);
        self
    }

    /// Cap the whole optimization at a wall-clock duration from now.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Deadline::after(budget));
        self
    }
}

/// The outcome of [`optimize`].
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The chosen plan (one segment per join-graph component, cross
    /// products last).
    pub plan: Plan,
    /// Estimated total cost, including cross products between segments.
    pub cost: f64,
    /// Per-segment costs, aligned with `plan.segments`. These are the
    /// costs the winning orders were found at; summing them and the
    /// cross-product join costs reproduces `cost` exactly. The plan cache
    /// stores these so a warm hit can reconstruct the cold-path cost
    /// bit-for-bit without re-pricing.
    pub segment_costs: Vec<f64>,
    /// Budget units consumed.
    pub units_used: u64,
    /// Full plan evaluations performed.
    pub n_evals: u64,
    /// Deepest fallback rung reached across components
    /// ([`Degradation::None`] when every component was planned by the
    /// configured method).
    pub degradation: Degradation,
    /// Whether the wall-clock deadline expired during the search.
    pub deadline_expired: bool,
    /// Parallel workers that panicked and were isolated (always 0 for the
    /// sequential [`try_optimize`] path; see [`try_optimize_parallel`]).
    pub workers_failed: usize,
    /// The portfolio method that produced the winning order of the
    /// largest component, when the plan came from a multi-method
    /// portfolio run ([`try_optimize_parallel`] with rotated methods).
    /// `None` on sequential paths, homogeneous fan-outs, and fallback
    /// rescues — the winner identity feeds the learned router and the
    /// per-class win counters, which only care about portfolio runs.
    pub winner: Option<Method>,
}

/// What planning one component produced, and how. Shared with the bushy
/// driver (`crate::bushy_search`), whose fallback ladder is the linear
/// one.
pub(crate) struct ComponentOutcome {
    pub(crate) best: Option<(JoinOrder, f64)>,
    pub(crate) units_used: u64,
    pub(crate) n_evals: u64,
    pub(crate) deadline_expired: bool,
    pub(crate) degradation: Degradation,
}

/// Plan one join-graph component down the fallback ladder:
///
/// 1. the configured method, panic-isolated, under budget + deadline;
/// 2. the augmentation heuristic (cheap, deterministic), panic-isolated;
/// 3. the cardinality-free structural order — generation consults no
///    statistics so it survives whatever corrupted the rungs above;
///    costing is best-effort (a panicking model yields cost `f64::MAX`);
/// 4. a random valid order — valid by construction, costed on a
///    best-effort basis.
///
/// Returns `best: None` only if all four rungs fail.
fn plan_component(
    query: &Query,
    model: &dyn CostModel,
    config: &OptimizerConfig,
    comp: &[RelId],
    budget: u64,
    rng: &mut SmallRng,
) -> ComponentOutcome {
    let mut outcome = ComponentOutcome {
        best: None,
        units_used: 0,
        n_evals: 0,
        deadline_expired: false,
        degradation: Degradation::None,
    };

    // Rung 1: the configured combinatorial method. `AssertUnwindSafe` is
    // justified: on panic the evaluator and its walker are discarded, and
    // the RNG holds plain integers whose state is usable regardless of
    // where the method stopped.
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let mut ev = Evaluator::with_budget(query, model, budget);
        if let Some(deadline) = config.deadline {
            ev.set_deadline(deadline);
        }
        if let Some(eps) = config.early_stop {
            let lb = model.lower_bound(query, comp);
            if lb > 0.0 {
                ev.set_stop_threshold(lb * (1.0 + eps));
            }
        }
        config.runner.run(config.method, &mut ev, comp, rng);
        let best = ev.best().map(|(o, c)| (o.clone(), c));
        (best, ev.used(), ev.n_evals(), ev.deadline_expired())
    }));
    match attempt {
        Ok((best, used, evals, deadline_hit)) => {
            outcome.units_used = used;
            outcome.n_evals = evals;
            outcome.deadline_expired = deadline_hit;
            if let Some((order, cost)) = best {
                if is_valid(query.graph(), order.rels()) {
                    outcome.best = Some((order, cost));
                    return outcome;
                }
            }
        }
        Err(_) => {
            // The method (or the cost model under it) panicked; its
            // evaluator died with it, so its spend is unknown and
            // reported as zero.
        }
    }

    component_fallback(query, model, config, comp, &mut outcome);
    outcome
}

/// Rungs 2–4 of the fallback ladder (augmentation heuristic, structural
/// order, then a random valid order), shared by the sequential and
/// parallel drivers. Accumulates into `outcome` and stamps the
/// degradation level reached.
///
/// The random rung derives its RNG from `config.seed` and the
/// component's identity — *not* from the shared method RNG. The method
/// RNG's state depends on where the search stopped, and under a
/// wall-clock [`Deadline`] that point is machine-dependent, which used
/// to make fallback plans non-reproducible across same-seed runs.
pub(crate) fn component_fallback(
    query: &Query,
    model: &dyn CostModel,
    config: &OptimizerConfig,
    comp: &[RelId],
    outcome: &mut ComponentOutcome,
) {
    // Rung 2: the augmentation heuristic. Panic-isolated too — it reads
    // the same catalog statistics that may have upset the method.
    outcome.degradation = Degradation::Heuristic;
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let first = AugmentationHeuristic::first_relations(query, comp)[0];
        let order = config.runner.augmentation.generate(query, comp, first);
        let cost = sanitize_cost(model.order_cost(query, order.rels()));
        (order, cost)
    }));
    if let Ok((order, cost)) = attempt {
        if is_valid(query.graph(), order.rels()) {
            outcome.units_used += comp.len() as u64 + 1;
            outcome.n_evals += 1;
            outcome.best = Some((order, cost));
            return;
        }
    }

    // Rung 3: the cardinality-free structural order. Generation reads
    // only the join graph — missing or non-finite statistics cannot
    // defeat it — so only the costing is best-effort: if the model
    // cannot price the order, it ships with cost MAX rather than being
    // discarded (a deterministic structural plan still beats a random
    // one).
    outcome.degradation = Degradation::CardFree;
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        CardFreeHeuristic.generate(query.graph(), comp)
    }));
    if let Ok(order) = attempt {
        if is_valid(query.graph(), order.rels()) {
            let cost = catch_unwind(AssertUnwindSafe(|| {
                sanitize_cost(model.order_cost(query, order.rels()))
            }))
            .unwrap_or(f64::MAX);
            outcome.units_used += comp.len() as u64 + 1;
            outcome.n_evals += 1;
            outcome.best = Some((order, cost));
            return;
        }
    }

    // Rung 4: a random valid order, from a fresh RNG seeded by
    // `config.seed` and the component identity (reproducible regardless
    // of how much entropy the method consumed before failing).
    outcome.degradation = Degradation::RandomOrder;
    let comp_id = comp.first().map(|r| r.0 as u64).unwrap_or(0);
    let mut fallback_rng = SmallRng::seed_from_u64(splitmix(config.seed ^ 0xFA11_BACC ^ comp_id));
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        random_valid_order(query.graph(), comp, &mut fallback_rng)
    }));
    if let Ok(order) = attempt {
        if is_valid(query.graph(), order.rels()) {
            let cost = catch_unwind(AssertUnwindSafe(|| {
                sanitize_cost(model.order_cost(query, order.rels()))
            }))
            .unwrap_or(f64::MAX);
            outcome.units_used += 1;
            outcome.n_evals += 1;
            outcome.best = Some((order, cost));
        }
    }
}

/// Optimize `query` under `model` with the given configuration,
/// panicking if no plan can be produced at all. Thin wrapper over
/// [`try_optimize`] kept for callers that treat total failure as a bug
/// (tests, benchmarks); services should prefer [`try_optimize`].
pub fn optimize(query: &Query, model: &dyn CostModel, config: &OptimizerConfig) -> Optimized {
    try_optimize(query, model, config).unwrap_or_else(|e| panic!("optimization failed: {e}"))
}

/// Optimize `query` under `model` with the given configuration.
///
/// The budget `τ·N²·κ` is split across the join-graph components in
/// proportion to the square of their sizes (each component's search space
/// scales with its own `N²`), with a floor so every component can at least
/// evaluate a couple of states. Singleton components cost nothing to plan.
///
/// Robustness: the catalog is revalidated up front (a [`CatalogError`]
/// becomes [`OptError::Catalog`]); each component's method runs
/// panic-isolated under the unit budget and the optional wall-clock
/// deadline, degrading per component to the augmentation heuristic, then
/// the cardinality-free structural order, then a random valid order (see
/// [`Degradation`]). An `Err` is returned only when some component
/// defeats every rung.
///
/// [`CatalogError`]: ljqo_catalog::CatalogError
pub fn try_optimize(
    query: &Query,
    model: &dyn CostModel,
    config: &OptimizerConfig,
) -> Result<Optimized, OptError> {
    query.validate()?;
    let components = query.graph().components();
    let n = query.n_joins().max(1);
    let total_budget = config.budget_units(n);

    let weight_sum: u64 = components
        .iter()
        .map(|c| (c.len() * c.len()) as u64)
        .sum::<u64>()
        .max(1);
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let mut segments: Vec<(JoinOrder, f64)> = Vec::with_capacity(components.len());
    let mut units_used = 0;
    let mut n_evals = 0;
    let mut degradation = Degradation::None;
    let mut deadline_expired = false;
    for (idx, comp) in components.iter().enumerate() {
        let share = total_budget.saturating_mul((comp.len() * comp.len()) as u64) / weight_sum;
        let budget = share.max(4 * comp.len() as u64);
        let outcome = plan_component(query, model, config, comp, budget, &mut rng);
        units_used += outcome.units_used;
        n_evals += outcome.n_evals;
        degradation = degradation.max(outcome.degradation);
        deadline_expired |= outcome.deadline_expired;
        let Some((order, cost)) = outcome.best else {
            return Err(OptError::NoValidPlan { component: idx });
        };
        segments.push((order, cost));
    }

    let (plan, total_cost, segment_costs) = assemble_plan(query, model, segments);
    Ok(Optimized {
        plan,
        cost: total_cost,
        segment_costs,
        units_used,
        n_evals,
        degradation,
        deadline_expired,
        workers_failed: 0,
        winner: None,
    })
}

/// Order the per-component segments (cross products last, smallest
/// component results first so the running outer operand stays as small as
/// possible) and price the assembled plan, cross products included.
///
/// The model is consulted once more here, so this is panic-isolated: a
/// plan whose segments were rescued by the fallback ladder must not be
/// lost to one last model fault while pricing the cross products.
///
/// Returns the plan, its total cost, and the per-segment costs in the
/// plan's (sorted) segment order. Assembly is a pure function of the
/// `(order, cost)` pairs: feeding the same pairs back in reproduces the
/// same total bit-for-bit, which is what lets a plan-cache hit return the
/// cold path's exact cost (see `crate::cached`).
pub(crate) fn assemble_plan(
    query: &Query,
    model: &dyn CostModel,
    mut segments: Vec<(JoinOrder, f64)>,
) -> (Plan, f64, Vec<f64>) {
    segments.sort_by(|a, b| {
        let sa = final_result_size(query, a.0.rels());
        let sb = final_result_size(query, b.0.rels());
        sa.total_cmp(&sb)
    });

    let total_cost = catch_unwind(AssertUnwindSafe(|| {
        let mut total: f64 = segments.iter().map(|&(_, c)| c).sum();
        let mut running = final_result_size(query, segments[0].0.rels());
        for (order, _) in segments.iter().skip(1) {
            let inner = final_result_size(query, order.rels());
            let output = clamp_card(running * inner);
            total += model.join_cost(&JoinCtx {
                outer_card: running,
                inner_card: inner,
                output_card: output,
                outer_rels: order.len(),
                is_cross_product: true,
            });
            running = output;
        }
        sanitize_cost(total)
    }))
    .unwrap_or(f64::MAX);

    let segment_costs: Vec<f64> = segments.iter().map(|&(_, c)| c).collect();
    let plan = Plan {
        segments: segments.into_iter().map(|(o, _)| o).collect(),
    };
    (plan, total_cost, segment_costs)
}

/// [`try_optimize`], with each component searched by a parallel worker
/// pool instead of one sequential method run.
///
/// Budget semantics match the sequential driver exactly: the same
/// `τ·N²·κ` total is split across components by squared size, and each
/// component's share is then sharded over `parallelism.workers` threads
/// (see [`crate::parallel::shard_budget`]) — so a parallel run is
/// comparable to a sequential run at the same budget, and under
/// [`Cooperation::Isolated`](crate::Cooperation::Isolated) is
/// bit-deterministic in `(seed, workers)`. With
/// `parallelism.methods` non-empty, workers rotate through that
/// portfolio instead of all running `config.method`.
///
/// Robustness: worker panics are isolated per worker (tallied in
/// [`Optimized::workers_failed`]); a component whose *every* worker
/// fails walks the same fallback ladder as the sequential driver
/// (augmentation heuristic, structural order, then a random valid
/// order), reported via [`Optimized::degradation`]. With
/// [`Parallelism::robust_portfolio`] the cardinality-free structural
/// order additionally challenges the portfolio winner on every
/// component, so the result is never worse than the plain portfolio at
/// equal budget (see [`crate::parallel::run_portfolio_robust`]).
pub fn try_optimize_parallel(
    query: &Query,
    model: &(dyn CostModel + Sync),
    config: &OptimizerConfig,
    parallelism: &Parallelism,
) -> Result<Optimized, OptError> {
    query.validate()?;
    let components = query.graph().components();
    let n = query.n_joins().max(1);
    let total_budget = config.budget_units(n);

    let weight_sum: u64 = components
        .iter()
        .map(|c| (c.len() * c.len()) as u64)
        .sum::<u64>()
        .max(1);
    let methods: &[Method] = if parallelism.methods.is_empty() {
        std::slice::from_ref(&config.method)
    } else {
        &parallelism.methods
    };
    // Learned routing engages only on genuine portfolios whose arm set
    // matches the router's; anything else keeps the uniform split.
    let routed = parallelism
        .router
        .as_deref()
        .filter(|r| methods.len() > 1 && r.n_arms() == methods.len())
        .map(|r| (r, ljqo_cache::classify(query)));

    let mut segments: Vec<(JoinOrder, f64)> = Vec::with_capacity(components.len());
    let mut units_used = 0;
    let mut n_evals = 0;
    let mut degradation = Degradation::None;
    let mut deadline_expired = false;
    let mut workers_failed = 0;
    let mut winner: Option<(usize, Method)> = None;
    for (idx, comp) in components.iter().enumerate() {
        let share = total_budget.saturating_mul((comp.len() * comp.len()) as u64) / weight_sum;
        let budget = share.max(4 * comp.len() as u64);
        // Singleton components have exactly one (trivial) plan; spawning
        // a worker pool for them would spend `workers` units on clones of
        // the same evaluation.
        let workers = if comp.len() == 1 {
            1
        } else {
            parallelism.workers.max(1)
        };
        let mut opts = ParallelOptions::new(budget, workers, config.seed ^ splitmix(idx as u64))
            .with_cooperation(parallelism.cooperation);
        if let Some(deadline) = config.deadline {
            opts = opts.with_deadline(deadline);
        }
        if let Some(eps) = config.early_stop {
            let lb = model.lower_bound(query, comp);
            if lb > 0.0 {
                opts = opts.with_stop_threshold(lb * (1.0 + eps));
            }
        }
        // Multi-worker multi-method components consult the router for a
        // learned share vector; singleton components (1 worker, 1
        // method) have nothing to route.
        let shares = routed
            .as_ref()
            .filter(|_| workers > 1)
            .map(|(r, class)| r.shares(class));
        let parallel = match (&shares, parallelism.structural_backstop) {
            (Some(w), true) => {
                run_portfolio_robust_weighted(query, model, &config.runner, methods, comp, &opts, w)
            }
            (Some(w), false) => {
                run_portfolio_weighted(query, model, &config.runner, methods, comp, &opts, w)
            }
            (None, true) => {
                run_portfolio_robust(query, model, &config.runner, methods, comp, &opts)
            }
            (None, false) => run_portfolio(query, model, &config.runner, methods, comp, &opts),
        };
        let outcome = match parallel {
            Some(r) if is_valid(query.graph(), r.order.rels()) => {
                workers_failed += r.workers_failed;
                if r.deadline_expired {
                    deadline_expired = true;
                }
                if methods.len() > 1 && comp.len() > 1 {
                    // Remember the portfolio winner of the largest
                    // routed component for `Optimized::winner`.
                    if winner.as_ref().is_none_or(|&(len, _)| comp.len() > len) {
                        winner = Some((comp.len(), r.method));
                    }
                    // Feed the outcome back into the router online.
                    if let Some((router, class)) = &routed {
                        record_portfolio_outcome(router, class, methods, &r);
                    }
                }
                ComponentOutcome {
                    best: Some((r.order, r.cost)),
                    units_used: r.units_used,
                    n_evals: r.n_evals,
                    deadline_expired: false,
                    degradation: Degradation::None,
                }
            }
            other => {
                // Every worker panicked or the budget bought no state at
                // all: fall down the sequential ladder.
                if let Some(r) = other {
                    workers_failed += r.workers_failed;
                }
                let mut outcome = ComponentOutcome {
                    best: None,
                    units_used: 0,
                    n_evals: 0,
                    deadline_expired: false,
                    degradation: Degradation::None,
                };
                component_fallback(query, model, config, comp, &mut outcome);
                outcome
            }
        };
        units_used += outcome.units_used;
        n_evals += outcome.n_evals;
        degradation = degradation.max(outcome.degradation);
        deadline_expired |= outcome.deadline_expired;
        let Some((order, cost)) = outcome.best else {
            return Err(OptError::NoValidPlan { component: idx });
        };
        segments.push((order, cost));
    }

    let (plan, total_cost, segment_costs) = assemble_plan(query, model, segments);
    Ok(Optimized {
        plan,
        cost: total_cost,
        segment_costs,
        units_used,
        n_evals,
        degradation,
        deadline_expired,
        workers_failed,
        winner: winner.map(|(_, m)| m),
    })
}

/// Reduce one portfolio run to per-arm statistics and feed the router.
///
/// Each arm's cost is the best across the workers that rotated it, and
/// its spend their summed consumption; the challenger's report (a
/// method outside the rotation, e.g. [`Method::Cardfree`]) matches no
/// arm and is skipped. Outcomes where fewer than two arms produced a
/// state teach nothing about *relative* merit and are dropped — the
/// reward is normalized within the run, so a lone survivor would always
/// score a meaningless 1.0.
fn record_portfolio_outcome(
    router: &ljqo_cache::BanditRouter,
    class: &ljqo_cache::QueryClass,
    methods: &[Method],
    r: &crate::parallel::ParallelResult,
) {
    let k = methods.len();
    let mut arm_costs: Vec<Option<f64>> = vec![None; k];
    let mut arm_units: Vec<u64> = vec![0; k];
    for report in &r.per_worker {
        let Some(arm) = methods.iter().position(|m| *m == report.method) else {
            continue;
        };
        arm_units[arm] += report.units_used;
        if let Some(cost) = report.best_cost.filter(|c| c.is_finite()) {
            arm_costs[arm] = Some(arm_costs[arm].map_or(cost, |c: f64| c.min(cost)));
        }
    }
    if arm_costs.iter().flatten().count() < 2 {
        return;
    }
    let winner = methods.iter().position(|m| *m == r.method);
    router.record_outcome(class, &arm_costs, &arm_units, winner);
}

/// Options for [`optimize_batch`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Thread-pool size; `0` means [`std::thread::available_parallelism`]
    /// (and never more threads than queries).
    pub threads: usize,
    /// Wall-clock deadline applied to each query individually, measured
    /// from the moment a pool thread claims it. A query that trips its
    /// deadline still returns the best (possibly degraded) plan found,
    /// flagged via [`Optimized::deadline_expired`] /
    /// [`Optimized::degradation`].
    pub per_query_deadline: Option<Duration>,
}

/// How one batch result was produced: the serving path that answered it
/// and the method credited with the plan. A long-running service feeds
/// these (via [`ServingCounters`](crate::ServingCounters)) into its
/// process-lifetime per-method win counts and per-rung degradation
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedVia {
    /// How the cache answered (always [`CacheOutcome::Miss`](crate::cached::CacheOutcome::Miss) for the
    /// plain, uncached [`optimize_batch`] driver).
    pub outcome: crate::cached::CacheOutcome,
    /// Short name of the method credited with the served plan: the cache
    /// entry's recorded producer on a hit, the configured method on a
    /// cold solve. For failed queries this is the configured method (no
    /// plan was produced; the name only says who was asked).
    pub producer: &'static str,
}

/// Outcome of [`optimize_batch`]: per-query results in input order, plus
/// aggregate degradation accounting for capacity planning.
#[derive(Debug)]
pub struct BatchReport {
    /// One result per input query, in input order.
    pub results: Vec<Result<Optimized, OptError>>,
    /// How each result was served, aligned with `results`.
    pub outcomes: Vec<ServedVia>,
    /// Queries that produced no plan at all ([`OptError`]).
    pub n_failed: usize,
    /// Queries whose plan came from a fallback rung
    /// ([`Degradation::is_degraded`]).
    pub n_degraded: usize,
    /// Queries whose per-query deadline expired during the search.
    pub n_deadline_expired: usize,
    /// Queries answered by running the full combinatorial search. For
    /// plain [`optimize_batch`] this is every query; the cache-aware
    /// driver (`optimize_batch_cached`) solves once per fingerprint class.
    pub n_cold_solves: usize,
    /// Queries answered from a pre-existing plan-cache entry (always 0
    /// for plain [`optimize_batch`]).
    pub n_cache_hits: usize,
    /// Queries answered by reusing a sibling's in-batch cold solve after
    /// fingerprint dedup (always 0 for plain [`optimize_batch`]).
    pub n_dedup_reuses: usize,
    /// Total budget units consumed across the batch.
    pub units_used: u64,
    /// End-to-end wall-clock time of the batch.
    pub wall: Duration,
}

/// Optimize many queries on a thread pool — the throughput-oriented
/// counterpart of the per-query drivers.
///
/// Threads claim queries from a shared work index (dynamic load
/// balancing: a pathological query does not stall its neighbours, only
/// its thread), and each query runs under the sequential
/// [`try_optimize`] path with a per-query seed derived from
/// `splitmix(config.seed ⊕ index)` — so results are deterministic in
/// `(config, queries)` and independent of the thread count and of
/// scheduling (deadline expiry aside). Per-query wall-clock deadlines
/// and the fallback ladder bound tail latency; the [`BatchReport`]
/// aggregates how often they were needed.
pub fn optimize_batch(
    queries: &[Query],
    model: &(dyn CostModel + Sync),
    config: &OptimizerConfig,
    options: &BatchOptions,
) -> BatchReport {
    let started = Instant::now();
    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        options.threads
    }
    .min(queries.len())
    .max(1);

    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, Result<Optimized, OptError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let mut cfg = *config;
                        cfg.seed = splitmix(config.seed ^ i as u64);
                        if let Some(d) = options.per_query_deadline {
                            cfg.deadline = Some(Deadline::after(d));
                        }
                        let model: &dyn CostModel = model;
                        out.push((i, try_optimize(&queries[i], model, &cfg)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("try_optimize is panic-isolated internally"))
            .collect()
    });
    collected.sort_by_key(|&(i, _)| i);

    let mut report = BatchReport {
        results: Vec::with_capacity(queries.len()),
        outcomes: Vec::with_capacity(queries.len()),
        n_failed: 0,
        n_degraded: 0,
        n_deadline_expired: 0,
        n_cold_solves: queries.len(),
        n_cache_hits: 0,
        n_dedup_reuses: 0,
        units_used: 0,
        wall: Duration::ZERO,
    };
    for (_, result) in collected {
        match &result {
            Ok(r) => {
                report.units_used += r.units_used;
                if r.degradation.is_degraded() {
                    report.n_degraded += 1;
                }
                if r.deadline_expired {
                    report.n_deadline_expired += 1;
                }
            }
            Err(_) => report.n_failed += 1,
        }
        report.outcomes.push(ServedVia {
            outcome: crate::cached::CacheOutcome::Miss,
            producer: config.method.name(),
        });
        report.results.push(result);
    }
    report.wall = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::{QueryBuilder, RelId};
    use ljqo_cost::{DiskCostModel, MemoryCostModel};
    use ljqo_plan::validity::is_valid;

    fn connected_query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .build()
            .unwrap()
    }

    fn disconnected_query() -> Query {
        QueryBuilder::new()
            .relation("a", 500)
            .relation("b", 40)
            .relation("c", 9000)
            .relation("d", 70)
            .relation("lonely", 3)
            .join("a", "b", 0.01)
            .join("c", "d", 0.001)
            .build()
            .unwrap()
    }

    #[test]
    fn optimize_connected_query_yields_single_segment() {
        let q = connected_query();
        let model = MemoryCostModel::default();
        let r = optimize(&q, &model, &OptimizerConfig::new(Method::Iai).with_seed(1));
        assert_eq!(r.plan.segments.len(), 1);
        assert_eq!(r.plan.n_relations(), 5);
        assert!(is_valid(q.graph(), r.plan.segments[0].rels()));
        assert!(r.cost.is_finite() && r.cost > 0.0);
        assert!(r.units_used > 0 && r.n_evals > 0);
    }

    #[test]
    fn optimize_reaches_dp_optimum_on_small_query() {
        let q = connected_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (_, opt) = crate::dp::optimal_order_dp(&q, &comp, &model).unwrap();
        let r = optimize(&q, &model, &OptimizerConfig::new(Method::Iai).with_seed(42));
        assert!(
            r.cost <= opt * 1.0 + 1e-9,
            "IAI at 9N² should find the optimum of a 4-join query: {} vs {opt}",
            r.cost
        );
    }

    #[test]
    fn optimize_disconnected_query_uses_cross_products_late() {
        let q = disconnected_query();
        let model = MemoryCostModel::default();
        let r = optimize(&q, &model, &OptimizerConfig::new(Method::Ii).with_seed(7));
        assert_eq!(r.plan.segments.len(), 3);
        // Every segment is a valid order of its own component.
        for seg in &r.plan.segments {
            assert!(is_valid(q.graph(), seg.rels()), "{seg}");
        }
        // Segments ascend by result size; the singleton (3 tuples) first.
        assert_eq!(r.plan.segments[0].rels(), &[RelId(4)]);
        assert_eq!(r.plan.n_relations(), 5);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let q = connected_query();
        let model = DiskCostModel::default();
        let cfg = OptimizerConfig::new(Method::Sa).with_seed(1234);
        let a = optimize(&q, &model, &cfg);
        let b = optimize(&q, &model, &cfg);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.units_used, b.units_used);
    }

    #[test]
    fn different_seeds_may_walk_differently_but_stay_valid() {
        let q = connected_query();
        let model = MemoryCostModel::default();
        for seed in 0..5 {
            let cfg = OptimizerConfig::new(Method::Agi)
                .with_seed(seed)
                .with_time_limit(0.5);
            let r = optimize(&q, &model, &cfg);
            assert!(is_valid(q.graph(), r.plan.segments[0].rels()));
        }
    }

    #[test]
    fn early_stopping_saves_budget_when_bound_is_reachable() {
        // A star query whose optimum is easy to hit: early stopping with a
        // generous epsilon must terminate well before the 9N² budget.
        let q = QueryBuilder::new()
            .relation("hub", 10)
            .relation("s1", 1000)
            .relation("s2", 2000)
            .relation("s3", 1500)
            .join("hub", "s1", 0.001)
            .join("hub", "s2", 0.0005)
            .join("hub", "s3", 0.0007)
            .build()
            .unwrap();
        let model = MemoryCostModel::default();
        let without = optimize(&q, &model, &OptimizerConfig::new(Method::Ii).with_seed(3));
        let with = optimize(
            &q,
            &model,
            &OptimizerConfig::new(Method::Ii)
                .with_seed(3)
                .with_early_stop(5.0),
        );
        assert!(
            with.units_used < without.units_used,
            "early stop used {} vs {} without",
            with.units_used,
            without.units_used
        );
        // The early-stopped plan is still valid and costed.
        assert!(is_valid(q.graph(), with.plan.segments[0].rels()));
        assert!(with.cost.is_finite());
    }

    #[test]
    fn parallel_driver_is_deterministic_and_valid() {
        let q = connected_query();
        let model = MemoryCostModel::default();
        let cfg = OptimizerConfig::new(Method::Ii).with_seed(21);
        let par = Parallelism::workers(4);
        let a = try_optimize_parallel(&q, &model, &cfg, &par).unwrap();
        let b = try_optimize_parallel(&q, &model, &cfg, &par).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.units_used, b.units_used);
        assert!(is_valid(q.graph(), a.plan.segments[0].rels()));
        assert_eq!(a.workers_failed, 0);
        assert!(!a.degradation.is_degraded());
    }

    #[test]
    fn parallel_driver_handles_disconnected_queries() {
        let q = disconnected_query();
        let model = MemoryCostModel::default();
        let cfg = OptimizerConfig::new(Method::Ii).with_seed(2);
        let r = try_optimize_parallel(&q, &model, &cfg, &Parallelism::portfolio(4)).unwrap();
        assert_eq!(r.plan.segments.len(), 3);
        for seg in &r.plan.segments {
            assert!(is_valid(q.graph(), seg.rels()), "{seg}");
        }
        assert!(r.cost.is_finite());
    }

    #[test]
    fn parallel_driver_budget_is_comparable_to_sequential() {
        // Sharding splits the same τ·N²·κ total, so a 4-worker run must
        // not consume materially more than the sequential driver (only
        // the bounded per-worker overrun differs).
        let q = connected_query();
        let model = MemoryCostModel::default();
        let cfg = OptimizerConfig::new(Method::Ii).with_seed(13);
        let seq = try_optimize(&q, &model, &cfg).unwrap();
        let par = try_optimize_parallel(&q, &model, &cfg, &Parallelism::workers(4)).unwrap();
        let slack = 4 * (64 + 4 * 5) as u64;
        assert!(
            par.units_used <= seq.units_used + slack,
            "parallel {} vs sequential {}",
            par.units_used,
            seq.units_used
        );
    }

    fn batch_queries() -> Vec<Query> {
        (0..6u64)
            .map(|i| {
                QueryBuilder::new()
                    .relation("a", 1000 + i * 37)
                    .relation("b", 12 + i)
                    .relation("c", 700 - i * 11)
                    .relation("d", 55 + i * 3)
                    .join("a", "b", 0.01)
                    .join("b", "c", 0.002)
                    .join("c", "d", 0.05)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_results_are_independent_of_thread_count() {
        let queries = batch_queries();
        let model = MemoryCostModel::default();
        let cfg = OptimizerConfig::new(Method::Iai).with_seed(77);
        let solo = optimize_batch(&queries, &model, &cfg, &BatchOptions::default());
        let pooled = optimize_batch(
            &queries,
            &model,
            &cfg,
            &BatchOptions {
                threads: 4,
                per_query_deadline: None,
            },
        );
        assert_eq!(solo.results.len(), queries.len());
        assert_eq!(solo.n_failed, 0);
        assert_eq!(pooled.n_failed, 0);
        for (a, b) in solo.results.iter().zip(&pooled.results) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.units_used, b.units_used);
        }
        assert_eq!(solo.units_used, pooled.units_used);
    }

    #[test]
    fn batch_queries_get_distinct_seeds() {
        // Two identical queries in one batch must not be planned by the
        // byte-identical search: per-query seeds are index-derived.
        let q = connected_query();
        let queries = vec![q.clone(), q];
        let model = MemoryCostModel::default();
        let cfg = OptimizerConfig::new(Method::Sa).with_seed(5);
        let report = optimize_batch(&queries, &model, &cfg, &BatchOptions::default());
        let (a, b) = (
            report.results[0].as_ref().unwrap(),
            report.results[1].as_ref().unwrap(),
        );
        // Same query, same budget — but independently seeded walks. Both
        // must be valid; their unit spend tallies into the report.
        assert!(a.cost.is_finite() && b.cost.is_finite());
        assert_eq!(report.units_used, a.units_used + b.units_used);
        assert!(report.wall > Duration::ZERO);
    }

    #[test]
    fn budget_scales_with_tau() {
        let q = connected_query();
        let model = MemoryCostModel::default();
        let small = optimize(
            &q,
            &model,
            &OptimizerConfig::new(Method::Ii).with_time_limit(0.5),
        );
        let large = optimize(
            &q,
            &model,
            &OptimizerConfig::new(Method::Ii).with_time_limit(9.0),
        );
        assert!(large.units_used > small.units_used);
        assert!(large.cost <= small.cost);
    }
}
