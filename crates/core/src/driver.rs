//! End-to-end optimization driver.
//!
//! Handles what the per-component methods do not: splitting a query into
//! join-graph components, allotting the deterministic budget, running the
//! chosen method per component, and assembling the final [`Plan`] with
//! cross products postponed to the end (the paper's heuristic for
//! disconnected join graphs).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo_catalog::Query;
use ljqo_cost::estimate::{clamp_card, final_result_size};
use ljqo_cost::{CostModel, Evaluator, JoinCtx, TimeLimit};
use ljqo_plan::{JoinOrder, Plan};

use crate::methods::{Method, MethodRunner};

/// Configuration for [`optimize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Which of the paper's nine methods to run.
    pub method: Method,
    /// The time limit `τ·N²` (the paper sweeps `τ` from 0.3 to 9).
    pub time_limit: TimeLimit,
    /// Budget calibration: units of work per `N²` (see `ljqo-cost`).
    pub kappa: f64,
    /// RNG seed; runs are fully deterministic given the seed.
    pub seed: u64,
    /// Early stopping: stop a component's search once the best solution is
    /// within this relative factor of the cost model's lower bound (paper
    /// §3: stop "when we are sufficiently close to the lower bound").
    /// `None` disables early stopping. `Some(0.1)` stops within 10%.
    pub early_stop: Option<f64>,
    /// Method parameters.
    pub runner: MethodRunner,
}

impl OptimizerConfig {
    /// A configuration with the paper's most generous time limit (`9N²`)
    /// and default calibration.
    pub fn new(method: Method) -> Self {
        OptimizerConfig {
            method,
            time_limit: TimeLimit::of(9.0),
            kappa: 5.0,
            seed: 0,
            early_stop: None,
            runner: MethodRunner::default(),
        }
    }

    /// Set the time limit multiplier `τ`.
    #[must_use]
    pub fn with_time_limit(mut self, tau: f64) -> Self {
        self.time_limit = TimeLimit::of(tau);
        self
    }

    /// Set the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the budget calibration constant.
    #[must_use]
    pub fn with_kappa(mut self, kappa: f64) -> Self {
        self.kappa = kappa;
        self
    }

    /// Enable early stopping within `epsilon` of the model's lower bound.
    #[must_use]
    pub fn with_early_stop(mut self, epsilon: f64) -> Self {
        self.early_stop = Some(epsilon);
        self
    }
}

/// The outcome of [`optimize`].
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The chosen plan (one segment per join-graph component, cross
    /// products last).
    pub plan: Plan,
    /// Estimated total cost, including cross products between segments.
    pub cost: f64,
    /// Budget units consumed.
    pub units_used: u64,
    /// Full plan evaluations performed.
    pub n_evals: u64,
}

/// Optimize `query` under `model` with the given configuration.
///
/// The budget `τ·N²·κ` is split across the join-graph components in
/// proportion to the square of their sizes (each component's search space
/// scales with its own `N²`), with a floor so every component can at least
/// evaluate a couple of states. Singleton components cost nothing to plan.
pub fn optimize(query: &Query, model: &dyn CostModel, config: &OptimizerConfig) -> Optimized {
    let components = query.graph().components();
    let n = query.n_joins().max(1);
    let total_budget = config.time_limit.units(n, config.kappa);

    let weight_sum: u64 = components
        .iter()
        .map(|c| (c.len() * c.len()) as u64)
        .sum::<u64>()
        .max(1);
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let mut segments: Vec<(JoinOrder, f64)> = Vec::with_capacity(components.len());
    let mut units_used = 0;
    let mut n_evals = 0;
    for comp in &components {
        let share = total_budget.saturating_mul((comp.len() * comp.len()) as u64) / weight_sum;
        let budget = share.max(4 * comp.len() as u64);
        let mut ev = Evaluator::with_budget(query, model, budget);
        if let Some(eps) = config.early_stop {
            let lb = model.lower_bound(query, comp);
            if lb > 0.0 {
                ev.set_stop_threshold(lb * (1.0 + eps));
            }
        }
        config
            .runner
            .run(config.method, &mut ev, comp, &mut rng);
        if ev.best().is_none() {
            // Guaranteed fallback so a plan always exists.
            config.runner.seed_random(&mut ev, comp, &mut rng);
        }
        units_used += ev.used();
        n_evals += ev.n_evals();
        let (order, cost) = ev.best().expect("fallback seeded a state");
        segments.push((order.clone(), cost));
    }

    // Cross products last, smallest component results first so the running
    // outer operand stays as small as possible.
    segments.sort_by(|a, b| {
        let sa = final_result_size(query, a.0.rels());
        let sb = final_result_size(query, b.0.rels());
        sa.partial_cmp(&sb).unwrap()
    });

    let mut total_cost: f64 = segments.iter().map(|&(_, c)| c).sum();
    let mut running = final_result_size(query, segments[0].0.rels());
    for (order, _) in segments.iter().skip(1) {
        let inner = final_result_size(query, order.rels());
        let output = clamp_card(running * inner);
        total_cost += model.join_cost(&JoinCtx {
            outer_card: running,
            inner_card: inner,
            output_card: output,
            outer_rels: order.len(),
            is_cross_product: true,
        });
        running = output;
    }

    Optimized {
        plan: Plan {
            segments: segments.into_iter().map(|(o, _)| o).collect(),
        },
        cost: total_cost,
        units_used,
        n_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::{QueryBuilder, RelId};
    use ljqo_cost::{DiskCostModel, MemoryCostModel};
    use ljqo_plan::validity::is_valid;

    fn connected_query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .build()
            .unwrap()
    }

    fn disconnected_query() -> Query {
        QueryBuilder::new()
            .relation("a", 500)
            .relation("b", 40)
            .relation("c", 9000)
            .relation("d", 70)
            .relation("lonely", 3)
            .join("a", "b", 0.01)
            .join("c", "d", 0.001)
            .build()
            .unwrap()
    }

    #[test]
    fn optimize_connected_query_yields_single_segment() {
        let q = connected_query();
        let model = MemoryCostModel::default();
        let r = optimize(&q, &model, &OptimizerConfig::new(Method::Iai).with_seed(1));
        assert_eq!(r.plan.segments.len(), 1);
        assert_eq!(r.plan.n_relations(), 5);
        assert!(is_valid(q.graph(), r.plan.segments[0].rels()));
        assert!(r.cost.is_finite() && r.cost > 0.0);
        assert!(r.units_used > 0 && r.n_evals > 0);
    }

    #[test]
    fn optimize_reaches_dp_optimum_on_small_query() {
        let q = connected_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (_, opt) = crate::dp::optimal_order_dp(&q, &comp, &model).unwrap();
        let r = optimize(&q, &model, &OptimizerConfig::new(Method::Iai).with_seed(42));
        assert!(
            r.cost <= opt * 1.0 + 1e-9,
            "IAI at 9N² should find the optimum of a 4-join query: {} vs {opt}",
            r.cost
        );
    }

    #[test]
    fn optimize_disconnected_query_uses_cross_products_late() {
        let q = disconnected_query();
        let model = MemoryCostModel::default();
        let r = optimize(&q, &model, &OptimizerConfig::new(Method::Ii).with_seed(7));
        assert_eq!(r.plan.segments.len(), 3);
        // Every segment is a valid order of its own component.
        for seg in &r.plan.segments {
            assert!(is_valid(q.graph(), seg.rels()), "{seg}");
        }
        // Segments ascend by result size; the singleton (3 tuples) first.
        assert_eq!(r.plan.segments[0].rels(), &[RelId(4)]);
        assert_eq!(r.plan.n_relations(), 5);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let q = connected_query();
        let model = DiskCostModel::default();
        let cfg = OptimizerConfig::new(Method::Sa).with_seed(1234);
        let a = optimize(&q, &model, &cfg);
        let b = optimize(&q, &model, &cfg);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.units_used, b.units_used);
    }

    #[test]
    fn different_seeds_may_walk_differently_but_stay_valid() {
        let q = connected_query();
        let model = MemoryCostModel::default();
        for seed in 0..5 {
            let cfg = OptimizerConfig::new(Method::Agi)
                .with_seed(seed)
                .with_time_limit(0.5);
            let r = optimize(&q, &model, &cfg);
            assert!(is_valid(q.graph(), r.plan.segments[0].rels()));
        }
    }

    #[test]
    fn early_stopping_saves_budget_when_bound_is_reachable() {
        // A star query whose optimum is easy to hit: early stopping with a
        // generous epsilon must terminate well before the 9N² budget.
        let q = QueryBuilder::new()
            .relation("hub", 10)
            .relation("s1", 1000)
            .relation("s2", 2000)
            .relation("s3", 1500)
            .join("hub", "s1", 0.001)
            .join("hub", "s2", 0.0005)
            .join("hub", "s3", 0.0007)
            .build()
            .unwrap();
        let model = MemoryCostModel::default();
        let without = optimize(&q, &model, &OptimizerConfig::new(Method::Ii).with_seed(3));
        let with = optimize(
            &q,
            &model,
            &OptimizerConfig::new(Method::Ii)
                .with_seed(3)
                .with_early_stop(5.0),
        );
        assert!(
            with.units_used < without.units_used,
            "early stop used {} vs {} without",
            with.units_used,
            without.units_used
        );
        // The early-stopped plan is still valid and costed.
        assert!(is_valid(q.graph(), with.plan.segments[0].rels()));
        assert!(with.cost.is_finite());
    }

    #[test]
    fn budget_scales_with_tau() {
        let q = connected_query();
        let model = MemoryCostModel::default();
        let small = optimize(
            &q,
            &model,
            &OptimizerConfig::new(Method::Ii).with_time_limit(0.5),
        );
        let large = optimize(
            &q,
            &model,
            &OptimizerConfig::new(Method::Ii).with_time_limit(9.0),
        );
        assert!(large.units_used > small.units_used);
        assert!(large.cost <= small.cost);
    }
}
