//! Parallel multi-start search — a modern extension.
//!
//! The paper's methods are inherently multi-start (II restarts, the
//! augmentation sweep); on 1988 hardware they ran sequentially under one
//! clock. On a multicore machine the restarts are embarrassingly
//! parallel: this module fans a method's budget out over worker threads,
//! each running an independent deterministic search, and keeps the best
//! result. Semantics: `run_parallel` with `k` workers and budget `B`
//! consumes at most `B` total units (each worker gets `B/k`), so results
//! are comparable to a sequential run at the same budget — the speedup
//! is wall-clock only, exactly like giving the paper's optimizer `k`
//! workstations.

use ljqo_catalog::{Query, RelId};
use ljqo_cost::{CostModel, Evaluator};
use ljqo_plan::JoinOrder;

use crate::methods::{Method, MethodRunner};

/// Outcome of a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelResult {
    /// The best order across all workers.
    pub order: JoinOrder,
    /// Its cost.
    pub cost: f64,
    /// Total budget units consumed across workers.
    pub units_used: u64,
    /// Total evaluations across workers.
    pub n_evals: u64,
    /// Evaluations that went through the incremental (delta) path, summed
    /// across workers.
    pub n_inc_evals: u64,
    /// Workers that died (panicked) before reporting a result. The run
    /// degrades to the survivors' best rather than propagating the panic.
    pub workers_failed: usize,
}

/// Run `method` with `workers` independent deterministic searches over
/// `component`, splitting `budget` evenly, and return the best result.
///
/// Deterministic in `(seed, workers)`: worker `i` uses seed
/// `seed ⊕ splitmix(i)`, so results do not depend on scheduling.
///
/// Workers are panic-isolated: a worker that panics (a buggy cost model,
/// poisoned statistics) is counted in
/// [`ParallelResult::workers_failed`] and the best state among the
/// survivors is returned. Returns `None` only if no worker produced a
/// state — every worker panicked, or the budget is smaller than one
/// evaluation per worker.
#[allow(clippy::too_many_arguments)] // mirrors the sequential run signature plus (budget, workers)
pub fn run_parallel(
    query: &Query,
    model: &(dyn CostModel + Sync),
    runner: &MethodRunner,
    method: Method,
    component: &[RelId],
    budget: u64,
    workers: usize,
    seed: u64,
) -> Option<ParallelResult> {
    let workers = workers.max(1);
    let share = (budget / workers as u64).max(1);

    type WorkerOutcome = (Option<(JoinOrder, f64)>, u64, u64, u64);
    let results: Vec<Option<WorkerOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut ev = Evaluator::with_budget(query, model, share);
                    let worker_seed = seed ^ splitmix(w as u64 + 1);
                    let mut rng = {
                        use rand::SeedableRng;
                        rand::rngs::SmallRng::seed_from_u64(worker_seed)
                    };
                    runner.run(method, &mut ev, component, &mut rng);
                    let best = ev.best().map(|(o, c)| (o.clone(), c));
                    (best, ev.used(), ev.n_evals(), ev.n_inc_evals())
                })
            })
            .collect();
        // A panicked worker surfaces as `Err` from `join`; swallowing it
        // here (rather than propagating) is the isolation boundary. Its
        // partial spend dies with its evaluator and is reported as zero.
        handles.into_iter().map(|h| h.join().ok()).collect()
    });

    let workers_failed = results.iter().filter(|r| r.is_none()).count();
    let survivors: Vec<WorkerOutcome> = results.into_iter().flatten().collect();
    let units_used = survivors.iter().map(|r| r.1).sum();
    let n_evals = survivors.iter().map(|r| r.2).sum();
    let n_inc_evals = survivors.iter().map(|r| r.3).sum();
    let (order, cost) = survivors
        .into_iter()
        .filter_map(|(best, _, _, _)| best)
        .min_by(|a, b| a.1.total_cmp(&b.1))?;
    Some(ParallelResult {
        order,
        cost,
        units_used,
        n_evals,
        n_inc_evals,
        workers_failed,
    })
}

/// SplitMix64 finalizer, used to derive independent worker seeds.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;
    use ljqo_cost::MemoryCostModel;
    use ljqo_plan::validity::is_valid;

    fn query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .relation("f", 90)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .join("e", "f", 0.02)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_run_is_deterministic_and_budgeted() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let a = run_parallel(&q, &model, &runner, Method::Ii, &comp, 4_000, 4, 9).unwrap();
        let b = run_parallel(&q, &model, &runner, Method::Ii, &comp, 4_000, 4, 9).unwrap();
        assert_eq!(a.order, b.order);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.units_used, b.units_used);
        assert!(is_valid(q.graph(), a.order.rels()));
        // Each worker may overrun its share by one indivisible step.
        assert!(a.units_used <= 4_000 + 4 * (64 + 4 * 6 + 7));
    }

    #[test]
    fn more_workers_do_not_break_quality() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let solo = run_parallel(&q, &model, &runner, Method::Iai, &comp, 6_000, 1, 5).unwrap();
        let quad = run_parallel(&q, &model, &runner, Method::Iai, &comp, 6_000, 4, 5).unwrap();
        // Both must find reasonable plans; neither dominates in general,
        // but both should be within 2x of each other on this small query.
        let ratio = (solo.cost / quad.cost).max(quad.cost / solo.cost);
        assert!(ratio < 2.0, "solo {} vs quad {}", solo.cost, quad.cost);
    }

    #[test]
    fn zero_worker_count_is_clamped() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let r = run_parallel(&q, &model, &runner, Method::Agi, &comp, 1_000, 0, 1).unwrap();
        assert!(r.cost.is_finite());
    }
}
