//! Parallel multi-start, cooperative, and portfolio search — a modern
//! extension.
//!
//! The paper's methods are inherently multi-start (II restarts, the
//! augmentation sweep, SA re-heats); on 1988 hardware they ran
//! sequentially under one clock. On a multicore machine the restarts are
//! embarrassingly parallel: this module fans a budget out over worker
//! threads and keeps the best result. Semantics: a run with `k` workers
//! and budget `B` *allots* at most `B` total units (worker `i` receives
//! `⌊B/k⌋` plus one of the `B mod k` remainder units), so results are
//! comparable to a sequential run at the same budget — the speedup is
//! wall-clock only, exactly like giving the paper's optimizer `k`
//! workstations. As everywhere else, a worker may overrun its share by
//! one indivisible step (one heuristic generation or one move proposal
//! with its validity-check retries).
//!
//! Three orthogonal extensions on top of the plain fan-out:
//!
//! * **Cooperation** ([`Cooperation`]): in [`Cooperation::SharedBest`]
//!   mode every worker publishes its best cost to a lock-free
//!   [`SharedBest`] cell and polls it on the evaluator's amortized
//!   cadence. When a stop threshold is set, the first worker to reach it
//!   winds *every* worker down — the cooperative analog of the paper's
//!   "stop when sufficiently close to the lower bound".
//! * **Portfolio** ([`run_portfolio`] with several methods): workers run
//!   *heterogeneous* methods (the [`PORTFOLIO`] default rotates II, SA,
//!   AGI, and KBZ-seeded II) instead of clones of one method, and the
//!   best survivor wins. Complementary heuristics hedge each other:
//!   augmentation-seeded workers dominate at small budgets, II/SA at
//!   large ones.
//! * **Batching**: [`crate::optimize_batch`] shards many *queries*
//!   across a thread pool with per-query deadlines — throughput-oriented
//!   parallelism one level above this module's latency-oriented kind.
//!
//! # Determinism
//!
//! [`Cooperation::Isolated`] (the default) is bit-deterministic in
//! `(seed, workers)`: worker `i` uses seed `seed ⊕ splitmix(i+1)` and
//! shares nothing, so results do not depend on scheduling.
//! [`Cooperation::SharedBest`] is **timing-dependent** — which worker
//! publishes first, and when others observe it, depends on the OS
//! scheduler — but *quality-monotone*: until a wind-down triggers, every
//! worker's search is unit-for-unit identical to its isolated twin, and
//! a wind-down only fires once the configured quality bar is met. With
//! no stop threshold configured, `SharedBest` returns exactly the
//! isolated result.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ljqo_catalog::{Query, RelId};
use ljqo_cost::{sanitize_cost, CostModel, Deadline, Evaluator, SharedBest};
use ljqo_heuristics::CardFreeHeuristic;
use ljqo_plan::validity::is_valid;
use ljqo_plan::JoinOrder;

use crate::methods::{Method, MethodRunner};

/// How parallel workers interact during the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cooperation {
    /// Workers share nothing. Bit-deterministic in `(seed, workers)`.
    #[default]
    Isolated,
    /// Workers publish best costs to a [`SharedBest`] cell and poll it on
    /// the evaluator's amortized cadence; any worker reaching the stop
    /// threshold (see [`ParallelOptions::stop_threshold`]) winds every
    /// worker down early. Timing-dependent but quality-monotone (see the
    /// module docs).
    SharedBest,
}

/// The default heterogeneous portfolio, ordered so small worker counts
/// get the strongest complementary pair first: iterative improvement
/// (the paper's best general technique), simulated annealing, the
/// augmentation-first AGI (the paper's winner at small time limits), and
/// KBZ-seeded II.
pub const PORTFOLIO: [Method; 4] = [Method::Ii, Method::Sa, Method::Agi, Method::Kbi];

/// The robustness portfolio: the uniform [`PORTFOLIO`] with the
/// cardinality-free structural method registered on top. The listed
/// methods are what rotates across workers — identical to the uniform
/// portfolio, so the worker searches are bit-for-bit the same — and
/// [`Method::Cardfree`] enters as a *challenger*: its single structural
/// order is evaluated against the portfolio winner after the workers
/// finish (see [`run_portfolio_robust`]). Keeping the rotation unchanged
/// is what makes the `SharedBest`-style contract provable: the robust
/// run can only replace the winner with something cheaper, never perturb
/// the searches themselves, so at equal budget it is never worse than
/// the uniform portfolio.
pub const ROBUST_PORTFOLIO: [Method; 4] = PORTFOLIO;

/// Options for [`run_portfolio`] (and, via the compatibility wrapper,
/// [`run_parallel`]).
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Total budget units allotted across all workers.
    pub budget: u64,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Base RNG seed; worker `i` derives `seed ⊕ splitmix(i+1)`.
    pub seed: u64,
    /// Worker interaction mode.
    pub cooperation: Cooperation,
    /// Early-stop threshold installed in every worker's evaluator. Under
    /// [`Cooperation::SharedBest`] this is also the global wind-down bar.
    pub stop_threshold: Option<f64>,
    /// Wall-clock deadline installed in every worker's evaluator.
    pub deadline: Option<Deadline>,
}

impl ParallelOptions {
    /// Isolated fan-out with no early stop and no deadline.
    pub fn new(budget: u64, workers: usize, seed: u64) -> Self {
        ParallelOptions {
            budget,
            workers,
            seed,
            cooperation: Cooperation::Isolated,
            stop_threshold: None,
            deadline: None,
        }
    }

    /// Set the cooperation mode.
    #[must_use]
    pub fn with_cooperation(mut self, cooperation: Cooperation) -> Self {
        self.cooperation = cooperation;
        self
    }

    /// Install an early-stop threshold in every worker.
    #[must_use]
    pub fn with_stop_threshold(mut self, threshold: f64) -> Self {
        self.stop_threshold = Some(threshold);
        self
    }

    /// Install a wall-clock deadline in every worker.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Per-worker accounting of one parallel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerReport {
    /// The method this worker ran.
    pub method: Method,
    /// The worker's own best cost (`None` if it was allotted no budget,
    /// produced no state, or panicked).
    pub best_cost: Option<f64>,
    /// Budget units the worker consumed.
    pub units_used: u64,
    /// Plan evaluations the worker performed.
    pub n_evals: u64,
    /// Whether the worker died (panicked) before reporting.
    pub panicked: bool,
}

/// Outcome of a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelResult {
    /// The best order across all workers.
    pub order: JoinOrder,
    /// Its cost.
    pub cost: f64,
    /// The method run by the worker that produced the best order (always
    /// the input method for homogeneous runs; informative under
    /// portfolio mode).
    pub method: Method,
    /// Total budget units consumed across workers.
    pub units_used: u64,
    /// Total evaluations across workers.
    pub n_evals: u64,
    /// Evaluations that went through the incremental (delta) path, summed
    /// across workers.
    pub n_inc_evals: u64,
    /// Workers that died (panicked) before reporting a result. The run
    /// degrades to the survivors' best rather than propagating the panic.
    pub workers_failed: usize,
    /// Whether any worker's wall-clock deadline expired during its search.
    pub deadline_expired: bool,
    /// Final value of the cooperative best-cost cell
    /// (`Some` only under [`Cooperation::SharedBest`]). Never worse than
    /// any worker's own best, including workers that panicked after
    /// publishing.
    pub shared_cost: Option<f64>,
    /// One report per configured worker, in worker order.
    pub per_worker: Vec<WorkerReport>,
}

/// Split `budget` into `workers` shares that sum to exactly `budget`:
/// every worker gets `⌊budget/workers⌋` and the first `budget mod
/// workers` workers get one remainder unit each. When
/// `budget < workers`, trailing workers receive zero (and are not
/// spawned by the runners) — the budget is *never* oversubscribed.
pub fn shard_budget(budget: u64, workers: usize) -> Vec<u64> {
    let workers = workers.max(1);
    let base = budget / workers as u64;
    let remainder = (budget % workers as u64) as usize;
    (0..workers)
        .map(|w| base + u64::from(w < remainder))
        .collect()
}

/// Split `budget` into shares proportional to `weights`, conserving the
/// total exactly: each worker gets `⌊budget·wᵢ/Σw⌋` and the leftover
/// units go one each to the workers with the largest fractional parts
/// (ties toward the lowest index, matching every other tie-break in
/// this module). Non-finite or negative weights are treated as zero; a
/// zero-weight worker receives exactly zero units. When the weights are
/// all equal — or absent, or all zero — the result is **bit-identical**
/// to [`shard_budget`], so the uniform path is unchanged by
/// construction.
pub fn shard_budget_weighted(budget: u64, weights: &[f64]) -> Vec<u64> {
    let sanitized: Vec<f64> = weights
        .iter()
        .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
        .collect();
    let total: f64 = sanitized.iter().sum();
    if sanitized.is_empty() || total <= 0.0 {
        return shard_budget(budget, weights.len());
    }
    let first = sanitized[0];
    if sanitized.iter().all(|&w| w == first) {
        return shard_budget(budget, weights.len());
    }
    let mut shares: Vec<u64> = Vec::with_capacity(sanitized.len());
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(sanitized.len());
    let mut allotted = 0u64;
    for (i, &w) in sanitized.iter().enumerate() {
        let exact = budget as f64 * (w / total);
        // The `min` guards the (float-rounding) edge where the floors
        // alone would oversubscribe; conservation must be exact.
        let share = (exact.floor() as u64).min(budget - allotted);
        shares.push(share);
        allotted += share;
        fracs.push((exact - exact.floor(), i));
    }
    // Largest fractional part first, lowest index on ties; only
    // positive-weight workers may receive remainder units.
    fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let eligible: Vec<usize> = fracs
        .iter()
        .filter(|&&(_, i)| sanitized[i] > 0.0)
        .map(|&(_, i)| i)
        .collect();
    let mut remainder = budget - allotted;
    let mut k = 0usize;
    while remainder > 0 {
        shares[eligible[k % eligible.len()]] += 1;
        remainder -= 1;
        k += 1;
    }
    shares
}

/// Run `method` with `workers` independent deterministic searches over
/// `component`, splitting `budget` exactly (see [`shard_budget`]), and
/// return the best result. Compatibility wrapper over [`run_portfolio`]
/// with a homogeneous method list and [`Cooperation::Isolated`].
///
/// Deterministic in `(seed, workers)`: worker `i` uses seed
/// `seed ⊕ splitmix(i+1)`, so results do not depend on scheduling.
///
/// Workers are panic-isolated: a worker that panics (a buggy cost model,
/// poisoned statistics) is counted in
/// [`ParallelResult::workers_failed`] and the best state among the
/// survivors is returned. Returns `None` only if no worker produced a
/// state — every worker panicked, or the budget is smaller than one
/// evaluation per worker.
#[allow(clippy::too_many_arguments)] // mirrors the sequential run signature plus (budget, workers)
pub fn run_parallel(
    query: &Query,
    model: &(dyn CostModel + Sync),
    runner: &MethodRunner,
    method: Method,
    component: &[RelId],
    budget: u64,
    workers: usize,
    seed: u64,
) -> Option<ParallelResult> {
    run_portfolio(
        query,
        model,
        runner,
        &[method],
        component,
        &ParallelOptions::new(budget, workers, seed),
    )
}

/// What one spawned worker reports back.
type WorkerOutcome = (Option<(JoinOrder, f64)>, u64, u64, u64, bool);

/// How one worker slot ended.
enum Slot {
    /// Allotted zero budget; never spawned.
    Skipped,
    /// Spawned but panicked before reporting.
    Panicked,
    /// Reported normally.
    Done(WorkerOutcome),
}

/// Run a *portfolio* of methods over `component`: worker `i` runs
/// `methods[i mod methods.len()]` under its budget share (see
/// [`shard_budget`]), and the best state across workers wins. With a
/// single-element `methods` this is plain homogeneous fan-out
/// ([`run_parallel`]).
///
/// Cooperation, early stopping, and deadlines are configured via
/// [`ParallelOptions`]; panic isolation and the `None` contract match
/// [`run_parallel`]. Ties between workers are broken toward the lowest
/// worker index, which keeps [`Cooperation::Isolated`] runs
/// bit-deterministic in `(seed, workers)`.
pub fn run_portfolio(
    query: &Query,
    model: &(dyn CostModel + Sync),
    runner: &MethodRunner,
    methods: &[Method],
    component: &[RelId],
    opts: &ParallelOptions,
) -> Option<ParallelResult> {
    assert!(!methods.is_empty(), "portfolio needs at least one method");
    let shares = shard_budget(opts.budget, opts.workers.max(1));
    run_portfolio_shares(query, model, runner, methods, component, opts, shares)
}

/// Run the portfolio with a *weighted* budget split: method `m`'s total
/// share of the budget is `method_weights[m] / Σ method_weights`,
/// divided evenly among the workers rotating that method, and the exact
/// split comes from [`shard_budget_weighted`] (total conserved to the
/// unit). Everything else — worker seeds, rotation, tie-breaks,
/// cooperation, panic isolation — is identical to [`run_portfolio`];
/// in particular worker `i`'s seed does not depend on the weights, so
/// changing shares only truncates or extends each worker's anytime
/// search. With equal weights this *is* [`run_portfolio`], bit for bit.
pub fn run_portfolio_weighted(
    query: &Query,
    model: &(dyn CostModel + Sync),
    runner: &MethodRunner,
    methods: &[Method],
    component: &[RelId],
    opts: &ParallelOptions,
    method_weights: &[f64],
) -> Option<ParallelResult> {
    assert!(!methods.is_empty(), "portfolio needs at least one method");
    assert_eq!(
        method_weights.len(),
        methods.len(),
        "one weight per portfolio method"
    );
    // Uniform (or degenerate) weights delegate to the plain uniform
    // path so existing baselines stay bit-identical.
    let finite_positive = method_weights.iter().any(|w| w.is_finite() && *w > 0.0);
    let uniform = method_weights
        .iter()
        .all(|w| *w == method_weights[0] && w.is_finite());
    if !finite_positive || uniform {
        return run_portfolio(query, model, runner, methods, component, opts);
    }
    let workers = opts.workers.max(1);
    // Workers per method under the `w mod K` rotation.
    let mut counts = vec![0u64; methods.len()];
    for w in 0..workers {
        counts[w % methods.len()] += 1;
    }
    let per_worker: Vec<f64> = (0..workers)
        .map(|w| {
            let m = w % methods.len();
            let weight = method_weights[m];
            if weight.is_finite() && weight > 0.0 && counts[m] > 0 {
                weight / counts[m] as f64
            } else {
                0.0
            }
        })
        .collect();
    let shares = shard_budget_weighted(opts.budget, &per_worker);
    run_portfolio_shares(query, model, runner, methods, component, opts, shares)
}

/// The common portfolio body: spawn one worker per share, rotate
/// methods, aggregate. `shares` must have one entry per worker.
fn run_portfolio_shares(
    query: &Query,
    model: &(dyn CostModel + Sync),
    runner: &MethodRunner,
    methods: &[Method],
    component: &[RelId],
    opts: &ParallelOptions,
    shares: Vec<u64>,
) -> Option<ParallelResult> {
    let workers = opts.workers.max(1);
    debug_assert_eq!(shares.len(), workers);
    let shared = match opts.cooperation {
        Cooperation::Isolated => None,
        Cooperation::SharedBest => Some(SharedBest::new()),
    };
    let (seed, stop_threshold, deadline) = (opts.seed, opts.stop_threshold, opts.deadline);

    let slots: Vec<(Method, Slot)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let method = methods[w % methods.len()];
                let share = shares[w];
                if share == 0 {
                    return (method, None);
                }
                let shared = shared.clone();
                let handle = scope.spawn(move || {
                    let mut ev = Evaluator::with_budget(query, model, share);
                    if let Some(d) = deadline {
                        ev.set_deadline(d);
                    }
                    if let Some(t) = stop_threshold {
                        ev.set_stop_threshold(t);
                    }
                    if let Some(s) = shared {
                        ev.set_shared_best(s);
                    }
                    let worker_seed = seed ^ splitmix(w as u64 + 1);
                    let mut rng = {
                        use rand::SeedableRng;
                        rand::rngs::SmallRng::seed_from_u64(worker_seed)
                    };
                    runner.run(method, &mut ev, component, &mut rng);
                    let best = ev.best().map(|(o, c)| (o.clone(), c));
                    (
                        best,
                        ev.used(),
                        ev.n_evals(),
                        ev.n_inc_evals(),
                        ev.deadline_expired(),
                    )
                });
                (method, Some(handle))
            })
            .collect();
        // A panicked worker surfaces as `Err` from `join`; swallowing it
        // here (rather than propagating) is the isolation boundary. Its
        // partial spend dies with its evaluator and is reported as zero.
        handles
            .into_iter()
            .map(|(method, handle)| {
                let slot = match handle {
                    None => Slot::Skipped,
                    Some(h) => match h.join() {
                        Ok(outcome) => Slot::Done(outcome),
                        Err(_) => Slot::Panicked,
                    },
                };
                (method, slot)
            })
            .collect()
    });

    let mut per_worker = Vec::with_capacity(workers);
    let mut workers_failed = 0usize;
    let mut units_used = 0u64;
    let mut n_evals = 0u64;
    let mut n_inc_evals = 0u64;
    let mut deadline_expired = false;
    let mut winner: Option<(JoinOrder, f64, Method)> = None;
    for (method, slot) in slots {
        match slot {
            Slot::Skipped => per_worker.push(WorkerReport {
                method,
                best_cost: None,
                units_used: 0,
                n_evals: 0,
                panicked: false,
            }),
            Slot::Panicked => {
                workers_failed += 1;
                per_worker.push(WorkerReport {
                    method,
                    best_cost: None,
                    units_used: 0,
                    n_evals: 0,
                    panicked: true,
                });
            }
            Slot::Done((best, used, evals, inc_evals, hit_deadline)) => {
                units_used += used;
                n_evals += evals;
                n_inc_evals += inc_evals;
                deadline_expired |= hit_deadline;
                per_worker.push(WorkerReport {
                    method,
                    best_cost: best.as_ref().map(|&(_, c)| c),
                    units_used: used,
                    n_evals: evals,
                    panicked: false,
                });
                if let Some((order, cost)) = best {
                    // Strict `<` breaks ties toward the lowest worker index.
                    if winner.as_ref().is_none_or(|&(_, c, _)| cost < c) {
                        winner = Some((order, cost, method));
                    }
                }
            }
        }
    }
    let (order, cost, method) = winner?;
    Some(ParallelResult {
        order,
        cost,
        method,
        units_used,
        n_evals,
        n_inc_evals,
        workers_failed,
        deadline_expired,
        shared_cost: shared.map(|s| s.get()),
        per_worker,
    })
}

/// Run the portfolio exactly as [`run_portfolio`] would, then let the
/// cardinality-free structural order ([`CardFreeHeuristic`]) *challenge*
/// the winner: the component's structural order is generated (it reads
/// no statistics, so this cannot be defeated by a poisoned catalog),
/// priced best-effort under panic isolation, and replaces the portfolio
/// winner only when strictly cheaper.
///
/// # Never-worse contract
///
/// The worker searches are bit-for-bit identical to the plain portfolio
/// at the same [`ParallelOptions`] — the challenger runs *after* they
/// finish and never feeds back into them — so
/// `run_portfolio_robust(...).cost ≤ run_portfolio(...).cost` holds by
/// construction whenever both return a result. The challenger's spend is
/// accounted on top: `component.len() + 1` budget units (one structural
/// generation plus one evaluation), the same indivisible-step overrun
/// slack every method already carries.
///
/// When the portfolio itself produces nothing (every worker panicked or
/// the budget was zero), the challenger alone can still rescue the run:
/// if its order prices to a finite cost, a challenger-only result is
/// returned; otherwise `None`, exactly like [`run_portfolio`].
pub fn run_portfolio_robust(
    query: &Query,
    model: &(dyn CostModel + Sync),
    runner: &MethodRunner,
    methods: &[Method],
    component: &[RelId],
    opts: &ParallelOptions,
) -> Option<ParallelResult> {
    let base = run_portfolio(query, model, runner, methods, component, opts);
    challenge_with_cardfree(query, model, component, base)
}

/// [`run_portfolio_robust`] over the *weighted* budget split of
/// [`run_portfolio_weighted`]: the workers run under the learned
/// shares, then the cardinality-free challenger gets its strict-`<`
/// shot at the winner. The never-worse contract of the challenger is
/// unchanged — it runs after the workers and never feeds back.
pub fn run_portfolio_robust_weighted(
    query: &Query,
    model: &(dyn CostModel + Sync),
    runner: &MethodRunner,
    methods: &[Method],
    component: &[RelId],
    opts: &ParallelOptions,
    method_weights: &[f64],
) -> Option<ParallelResult> {
    let base = run_portfolio_weighted(
        query,
        model,
        runner,
        methods,
        component,
        opts,
        method_weights,
    );
    challenge_with_cardfree(query, model, component, base)
}

/// The shared challenger step of the robust portfolio variants.
fn challenge_with_cardfree(
    query: &Query,
    model: &(dyn CostModel + Sync),
    component: &[RelId],
    base: Option<ParallelResult>,
) -> Option<ParallelResult> {
    // The structural challenger. Generation is pure graph traversal and
    // cannot consult statistics, but it is still panic-isolated — the
    // robust path must never be *less* reliable than the plain one.
    let Some(order) = catch_unwind(AssertUnwindSafe(|| {
        CardFreeHeuristic.generate(query.graph(), component)
    }))
    .ok()
    .filter(|o| is_valid(query.graph(), o.rels())) else {
        // Structural generation itself failed (should be unreachable on a
        // validated query): fall back to the plain portfolio result.
        return base;
    };
    let challenger_cost = catch_unwind(AssertUnwindSafe(|| {
        sanitize_cost(model.order_cost(query, order.rels()))
    }))
    .unwrap_or(f64::MAX);
    let challenger_units = component.len() as u64 + 1;

    match base {
        Some(mut r) => {
            r.units_used += challenger_units;
            r.n_evals += 1;
            r.per_worker.push(WorkerReport {
                method: Method::Cardfree,
                best_cost: Some(challenger_cost),
                units_used: challenger_units,
                n_evals: 1,
                panicked: false,
            });
            // Strict `<`: on a tie the portfolio winner stands, mirroring
            // the lowest-worker-index tie-break inside `run_portfolio`.
            if challenger_cost < r.cost {
                r.order = order;
                r.cost = challenger_cost;
                r.method = Method::Cardfree;
            }
            Some(r)
        }
        // Challenger-only rescue. The base run reported nothing, so no
        // per-worker accounting is available; the report carries the
        // challenger alone (workers that panicked or were skipped for
        // lack of budget are indistinguishable here).
        None if challenger_cost < f64::MAX => Some(ParallelResult {
            order,
            cost: challenger_cost,
            method: Method::Cardfree,
            units_used: challenger_units,
            n_evals: 1,
            n_inc_evals: 0,
            workers_failed: 0,
            deadline_expired: false,
            shared_cost: None,
            per_worker: vec![WorkerReport {
                method: Method::Cardfree,
                best_cost: Some(challenger_cost),
                units_used: challenger_units,
                n_evals: 1,
                panicked: false,
            }],
        }),
        None => None,
    }
}

/// Parallel-search configuration for the driver-level entry point
/// [`crate::try_optimize_parallel`].
#[derive(Debug, Clone)]
pub struct Parallelism {
    /// Worker threads per component (clamped to at least 1).
    pub workers: usize,
    /// Worker interaction mode.
    pub cooperation: Cooperation,
    /// Methods rotated across workers; empty means "the configured
    /// method on every worker" (homogeneous fan-out). Use
    /// [`Parallelism::portfolio`] for the [`PORTFOLIO`] default.
    pub methods: Vec<Method>,
    /// When set, every component's run goes through
    /// [`run_portfolio_robust`]: the cardinality-free structural order
    /// challenges the portfolio winner, so the result is never worse
    /// than the same configuration without the backstop at equal budget.
    /// Use [`Parallelism::robust_portfolio`] for the default.
    pub structural_backstop: bool,
    /// Learned budget routing: when set (and the portfolio rotates more
    /// than one method), each query's [`ljqo_cache::QueryClass`] is
    /// looked up in the shared [`ljqo_cache::BanditRouter`], the
    /// emitted share
    /// vector drives [`run_portfolio_weighted`], and the outcome is fed
    /// back into the router online. `None` (the default) keeps the
    /// uniform split.
    pub router: Option<std::sync::Arc<ljqo_cache::BanditRouter>>,
}

impl PartialEq for Parallelism {
    fn eq(&self, other: &Self) -> bool {
        self.workers == other.workers
            && self.cooperation == other.cooperation
            && self.methods == other.methods
            && self.structural_backstop == other.structural_backstop
            && match (&self.router, &other.router) {
                (None, None) => true,
                (Some(a), Some(b)) => std::sync::Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Parallelism {
    /// Homogeneous isolated fan-out over `workers` threads.
    pub fn workers(workers: usize) -> Self {
        Parallelism {
            workers,
            cooperation: Cooperation::Isolated,
            methods: Vec::new(),
            structural_backstop: false,
            router: None,
        }
    }

    /// The default heterogeneous portfolio over `workers` threads.
    pub fn portfolio(workers: usize) -> Self {
        Parallelism {
            workers,
            cooperation: Cooperation::Isolated,
            methods: PORTFOLIO.to_vec(),
            structural_backstop: false,
            router: None,
        }
    }

    /// The robustness portfolio over `workers` threads: the
    /// [`ROBUST_PORTFOLIO`] rotation with the cardinality-free
    /// structural challenger enabled (see [`run_portfolio_robust`]).
    pub fn robust_portfolio(workers: usize) -> Self {
        Parallelism {
            workers,
            cooperation: Cooperation::Isolated,
            methods: ROBUST_PORTFOLIO.to_vec(),
            structural_backstop: true,
            router: None,
        }
    }

    /// Set the cooperation mode.
    #[must_use]
    pub fn with_cooperation(mut self, cooperation: Cooperation) -> Self {
        self.cooperation = cooperation;
        self
    }

    /// Attach a learned budget router (shared, updated online). The
    /// router only takes effect on multi-method portfolios; homogeneous
    /// fan-outs have nothing to route between.
    #[must_use]
    pub fn with_router(mut self, router: std::sync::Arc<ljqo_cache::BanditRouter>) -> Self {
        self.router = Some(router);
        self
    }
}

/// SplitMix64 finalizer, used to derive independent worker seeds.
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;
    use ljqo_cost::MemoryCostModel;
    use ljqo_plan::validity::is_valid;

    fn query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .relation("f", 90)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .join("e", "f", 0.02)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_run_is_deterministic_and_budgeted() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let a = run_parallel(&q, &model, &runner, Method::Ii, &comp, 4_000, 4, 9).unwrap();
        let b = run_parallel(&q, &model, &runner, Method::Ii, &comp, 4_000, 4, 9).unwrap();
        assert_eq!(a.order, b.order);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.units_used, b.units_used);
        assert_eq!(a.method, Method::Ii);
        assert!(is_valid(q.graph(), a.order.rels()));
        // Each worker may overrun its share by one indivisible step.
        assert!(a.units_used <= 4_000 + 4 * (64 + 4 * 6 + 7));
    }

    #[test]
    fn shard_budget_conserves_and_spreads_the_remainder() {
        // budget = 100, workers = 8: 4 workers of 13, 4 of 12 — no unit
        // dropped (the old `(budget / workers).max(1)` handed out 8 × 12
        // and silently lost 4).
        assert_eq!(shard_budget(100, 8), vec![13, 13, 13, 13, 12, 12, 12, 12]);
        // budget < workers: first `budget` workers get one unit, the rest
        // get zero — never `workers` units against a budget of less.
        assert_eq!(shard_budget(3, 8), vec![1, 1, 1, 0, 0, 0, 0, 0]);
        assert_eq!(shard_budget(0, 4), vec![0, 0, 0, 0]);
        for (budget, workers) in [(1u64, 1usize), (7, 3), (64, 64), (1000, 7), (5, 9)] {
            let shares = shard_budget(budget, workers);
            assert_eq!(shares.iter().sum::<u64>(), budget, "{budget}/{workers}");
            let (min, max) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
            assert!(max - min <= 1, "{budget}/{workers}: uneven {shares:?}");
        }
    }

    #[test]
    fn tiny_budget_is_never_oversubscribed() {
        // Regression: budget 3 over 8 workers used to allot max(3/8,1) = 1
        // unit to *each* worker, spending up to 8 units against a budget
        // of 3. Now only the first 3 workers run, one unit each.
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let r = run_parallel(&q, &model, &runner, Method::Ii, &comp, 3, 8, 5).unwrap();
        assert!(
            r.units_used <= 3,
            "budget 3 oversubscribed: {} units spent",
            r.units_used
        );
        assert!(r.cost.is_finite());
        let active = r.per_worker.iter().filter(|w| w.units_used > 0).count();
        assert_eq!(active, 3);
    }

    #[test]
    fn remainder_units_are_distributed_not_dropped() {
        // Regression: budget 100 over 8 workers used to hand out only
        // 12 × 8 = 96 units. II runs until exhaustion, so the full 100
        // allotted units must now be consumed (up to per-worker overrun).
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let r = run_parallel(&q, &model, &runner, Method::Ii, &comp, 100, 8, 5).unwrap();
        assert!(
            r.units_used >= 100,
            "remainder dropped: only {} of 100 units consumed",
            r.units_used
        );
        let slack = 8 * (64 + 4 * 6);
        assert!(r.units_used <= 100 + slack);
    }

    #[test]
    fn more_workers_do_not_break_quality() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let solo = run_parallel(&q, &model, &runner, Method::Iai, &comp, 6_000, 1, 5).unwrap();
        let quad = run_parallel(&q, &model, &runner, Method::Iai, &comp, 6_000, 4, 5).unwrap();
        // Both must find reasonable plans; neither dominates in general,
        // but both should be within 2x of each other on this small query.
        let ratio = (solo.cost / quad.cost).max(quad.cost / solo.cost);
        assert!(ratio < 2.0, "solo {} vs quad {}", solo.cost, quad.cost);
    }

    #[test]
    fn zero_worker_count_is_clamped() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let r = run_parallel(&q, &model, &runner, Method::Agi, &comp, 1_000, 0, 1).unwrap();
        assert!(r.cost.is_finite());
    }

    #[test]
    fn shared_best_without_threshold_matches_isolated_exactly() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let base = ParallelOptions::new(4_000, 4, 9);
        let iso = run_portfolio(&q, &model, &runner, &[Method::Ii], &comp, &base).unwrap();
        let coop = run_portfolio(
            &q,
            &model,
            &runner,
            &[Method::Ii],
            &comp,
            &base.with_cooperation(Cooperation::SharedBest),
        )
        .unwrap();
        // With no stop threshold, cooperation only observes — every
        // worker's search is bit-identical to its isolated twin.
        assert_eq!(iso.order, coop.order);
        assert_eq!(iso.cost, coop.cost);
        assert_eq!(iso.units_used, coop.units_used);
        // The shared cell ends at the winning cost, never worse than any
        // worker's own best.
        let shared = coop.shared_cost.unwrap();
        assert_eq!(shared, coop.cost);
        for w in &coop.per_worker {
            if let Some(c) = w.best_cost {
                assert!(shared <= c);
            }
        }
        assert!(iso.shared_cost.is_none());
    }

    #[test]
    fn shared_best_winddown_saves_budget() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        // A generous threshold every descent reaches quickly: the cost of
        // the best augmentation state times 4 (II descends well below it).
        let mut pilot = Evaluator::new(&q, &model);
        let firsts = ljqo_heuristics::AugmentationHeuristic::first_relations(&q, &comp);
        let pilot_order = runner.augmentation.generate(&q, &comp, firsts[0]);
        let threshold = pilot.cost(&pilot_order) * 4.0;
        let base = ParallelOptions::new(400_000, 4, 9).with_stop_threshold(threshold);
        let iso = run_portfolio(&q, &model, &runner, &[Method::Ii], &comp, &base).unwrap();
        let coop = run_portfolio(
            &q,
            &model,
            &runner,
            &[Method::Ii],
            &comp,
            &base.with_cooperation(Cooperation::SharedBest),
        )
        .unwrap();
        // Both runs reach the quality bar...
        assert!(iso.cost <= threshold);
        assert!(coop.cost <= threshold);
        // ...and the cooperative run never spends more than the isolated
        // one (a worker stops at its own bar in both modes; cooperation
        // can only stop *earlier* on a foreign publish).
        assert!(
            coop.units_used <= iso.units_used,
            "coop {} > iso {}",
            coop.units_used,
            iso.units_used
        );
    }

    #[test]
    fn portfolio_rotates_methods_and_reports_the_winner() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let r = run_portfolio(
            &q,
            &model,
            &runner,
            &PORTFOLIO,
            &comp,
            &ParallelOptions::new(8_000, 6, 3),
        )
        .unwrap();
        assert!(is_valid(q.graph(), r.order.rels()));
        assert_eq!(r.per_worker.len(), 6);
        for (w, report) in r.per_worker.iter().enumerate() {
            assert_eq!(report.method, PORTFOLIO[w % PORTFOLIO.len()]);
            assert!(report.best_cost.is_some());
        }
        assert!(PORTFOLIO.contains(&r.method));
        // The portfolio's winner is the minimum across workers.
        let min = r
            .per_worker
            .iter()
            .filter_map(|w| w.best_cost)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(r.cost, min);
    }

    #[test]
    fn robust_portfolio_is_never_worse_than_plain() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        for (budget, workers, seed) in [(200u64, 2usize, 1u64), (2_000, 4, 7), (8_000, 6, 42)] {
            let opts = ParallelOptions::new(budget, workers, seed);
            let plain = run_portfolio(&q, &model, &runner, &PORTFOLIO, &comp, &opts).unwrap();
            let robust =
                run_portfolio_robust(&q, &model, &runner, &ROBUST_PORTFOLIO, &comp, &opts).unwrap();
            assert!(
                robust.cost <= plain.cost,
                "robust {} worse than plain {} at budget {budget}",
                robust.cost,
                plain.cost
            );
            assert!(is_valid(q.graph(), robust.order.rels()));
            // Challenger spend is accounted on top of the identical base.
            assert_eq!(robust.units_used, plain.units_used + comp.len() as u64 + 1);
            assert_eq!(robust.n_evals, plain.n_evals + 1);
            // The challenger appears as one extra per-worker report.
            assert_eq!(robust.per_worker.len(), plain.per_worker.len() + 1);
            let last = robust.per_worker.last().unwrap();
            assert_eq!(last.method, Method::Cardfree);
            assert!(last.best_cost.is_some());
        }
    }

    #[test]
    fn robust_portfolio_rescues_an_empty_base_run() {
        // Budget 0: no worker is ever spawned, so the plain portfolio
        // returns None — but the challenger needs no budget share and
        // rescues the run with the structural order.
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let opts = ParallelOptions::new(0, 3, 11);
        assert!(run_portfolio(&q, &model, &runner, &PORTFOLIO, &comp, &opts).is_none());
        let r = run_portfolio_robust(&q, &model, &runner, &ROBUST_PORTFOLIO, &comp, &opts).unwrap();
        assert_eq!(r.method, Method::Cardfree);
        assert!(r.cost.is_finite());
        assert!(is_valid(q.graph(), r.order.rels()));
        assert_eq!(r.units_used, comp.len() as u64 + 1);
    }

    #[test]
    fn robust_portfolio_stays_none_when_pricing_is_impossible() {
        struct AlwaysPanic;
        impl CostModel for AlwaysPanic {
            fn join_cost(&self, _ctx: &ljqo_cost::JoinCtx) -> f64 {
                panic!("poisoned model");
            }
            fn name(&self) -> &'static str {
                "always-panic"
            }
        }
        let q = query();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let opts = ParallelOptions::new(1_000, 3, 11);
        // Plain portfolio: every worker dies, no result at all.
        assert!(run_portfolio(&q, &AlwaysPanic, &runner, &PORTFOLIO, &comp, &opts).is_none());
        // Robust: the challenger's pricing also panics, so its cost is
        // f64::MAX — not finite enough to claim a rescue either. The
        // degradation ladder in the driver handles this case instead.
        assert!(
            run_portfolio_robust(&q, &AlwaysPanic, &runner, &ROBUST_PORTFOLIO, &comp, &opts)
                .is_none()
        );
    }

    #[test]
    fn robust_constructor_sets_the_backstop() {
        let p = Parallelism::robust_portfolio(4);
        assert!(p.structural_backstop);
        assert_eq!(p.methods, ROBUST_PORTFOLIO.to_vec());
        assert!(!Parallelism::portfolio(4).structural_backstop);
        assert!(!Parallelism::workers(4).structural_backstop);
        assert!(p.router.is_none());
    }

    #[test]
    fn weighted_sharding_conserves_the_budget_exhaustively() {
        // The conservation property over a dense grid of corner cases:
        // remainders in every residue class, budget < workers, zero
        // weights, tiny and skewed weights. The sum must equal the
        // budget *exactly* in every cell.
        let weight_sets: [&[f64]; 9] = [
            &[1.0],
            &[1.0, 1.0, 1.0, 1.0],
            &[0.7, 0.1, 0.1, 0.1],
            &[0.125, 0.625, 0.125, 0.125],
            &[0.0, 1.0, 0.0, 3.0],
            &[1e-9, 1.0, 1e-9],
            &[3.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            &[f64::NAN, 1.0, f64::INFINITY, 2.0],
            &[-1.0, 0.5, 0.5],
        ];
        for budget in (0u64..40).chain([97, 100, 101, 1000, 12_345]) {
            for weights in weight_sets {
                let shares = shard_budget_weighted(budget, weights);
                assert_eq!(shares.len(), weights.len());
                assert_eq!(
                    shares.iter().sum::<u64>(),
                    budget,
                    "budget {budget} not conserved for {weights:?}: {shares:?}"
                );
                // Sanitized-to-zero weights must receive exactly zero.
                for (i, &w) in weights.iter().enumerate() {
                    if !(w.is_finite() && w > 0.0) {
                        assert_eq!(shares[i], 0, "zero-weight worker {i} got budget");
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_sharding_uniform_path_is_bit_identical_to_shard_budget() {
        for budget in [0u64, 1, 3, 7, 100, 101, 4096, 99_999] {
            for workers in 1usize..10 {
                for w in [1.0f64, 0.25, 1e-6, 1e9] {
                    let weights = vec![w; workers];
                    assert_eq!(
                        shard_budget_weighted(budget, &weights),
                        shard_budget(budget, workers),
                        "uniform weights {w} diverged at {budget}/{workers}"
                    );
                }
                // All-zero and all-garbage weight vectors also fall back
                // to the uniform split rather than erroring.
                assert_eq!(
                    shard_budget_weighted(budget, &vec![0.0; workers]),
                    shard_budget(budget, workers)
                );
                assert_eq!(
                    shard_budget_weighted(budget, &vec![f64::NAN; workers]),
                    shard_budget(budget, workers)
                );
            }
        }
    }

    #[test]
    fn weighted_sharding_is_proportional_and_breaks_ties_low() {
        // 100 units at weights 70/10/10/10.
        assert_eq!(
            shard_budget_weighted(100, &[7.0, 1.0, 1.0, 1.0]),
            vec![70, 10, 10, 10]
        );
        // 10 units at weights 1/1/2: floors 2/2/5, one remainder unit to
        // the largest fraction (0.5 twice → lowest index wins).
        assert_eq!(shard_budget_weighted(10, &[1.0, 1.0, 2.0]), vec![3, 2, 5]);
        // budget < positive workers: units go to the heaviest workers
        // first (largest fractional part of the exact share).
        assert_eq!(shard_budget_weighted(1, &[1.0, 3.0, 1.0]), vec![0, 1, 0]);
        // Scale invariance: weights are shares, not magnitudes.
        assert_eq!(
            shard_budget_weighted(1000, &[0.7, 0.1, 0.1, 0.1]),
            shard_budget_weighted(1000, &[7e9, 1e9, 1e9, 1e9])
        );
    }

    #[test]
    fn weighted_portfolio_with_uniform_weights_is_bit_identical() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        // Worker count NOT divisible by the method count, so per-method
        // worker groups are uneven — the uniform fast path must still
        // delegate to the plain per-worker split.
        let opts = ParallelOptions::new(6_000, 6, 17);
        let plain = run_portfolio(&q, &model, &runner, &PORTFOLIO, &comp, &opts).unwrap();
        let weighted = run_portfolio_weighted(
            &q,
            &model,
            &runner,
            &PORTFOLIO,
            &comp,
            &opts,
            &[0.25, 0.25, 0.25, 0.25],
        )
        .unwrap();
        assert_eq!(plain.order, weighted.order);
        assert_eq!(plain.cost, weighted.cost);
        assert_eq!(plain.units_used, weighted.units_used);
        assert_eq!(plain.per_worker.len(), weighted.per_worker.len());
    }

    #[test]
    fn weighted_portfolio_respects_method_level_shares() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        // 8 workers over 4 methods, II boosted to 5/8 of the budget with
        // an ε floor of 1/8 for the rest.
        let opts = ParallelOptions::new(8_000, 8, 23);
        let r = run_portfolio_weighted(
            &q,
            &model,
            &runner,
            &PORTFOLIO,
            &comp,
            &opts,
            &[0.625, 0.125, 0.125, 0.125],
        )
        .unwrap();
        assert!(is_valid(q.graph(), r.order.rels()));
        // Each method has 2 workers; II's pair together must hold 5/8 of
        // the allotment. II runs to exhaustion, so consumed units track
        // the allotment closely.
        let ii_units: u64 = r
            .per_worker
            .iter()
            .filter(|w| w.method == Method::Ii)
            .map(|w| w.units_used)
            .sum();
        assert!(
            ii_units >= 4_500,
            "II workers consumed only {ii_units} of an expected ~5000"
        );
    }

    #[test]
    fn weighted_robust_portfolio_keeps_the_challenger_contract() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let runner = MethodRunner::default();
        let opts = ParallelOptions::new(4_000, 4, 31);
        let weights = [0.625, 0.125, 0.125, 0.125];
        let plain = run_portfolio_weighted(&q, &model, &runner, &PORTFOLIO, &comp, &opts, &weights)
            .unwrap();
        let robust =
            run_portfolio_robust_weighted(&q, &model, &runner, &PORTFOLIO, &comp, &opts, &weights)
                .unwrap();
        assert!(robust.cost <= plain.cost);
        assert_eq!(robust.units_used, plain.units_used + comp.len() as u64 + 1);
        assert_eq!(robust.per_worker.last().unwrap().method, Method::Cardfree);
    }
}
