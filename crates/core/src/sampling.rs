//! Random sampling — the strawman baseline from SG88.
//!
//! Swami & Gupta's 1988 comparison included the simplest conceivable
//! technique: draw random valid states and keep the best. It loses to
//! iterative improvement (which is why the 1989 paper drops it), but it
//! calibrates the others — a method that cannot beat random sampling at
//! equal budget is doing worse than no search strategy at all. The
//! `baseline_dp` bench includes it for exactly that purpose.

use rand::Rng;

use ljqo_catalog::RelId;
use ljqo_cost::Evaluator;
use ljqo_plan::random_valid_order;

/// Pure random sampling of the valid-plan space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RandomSampling;

impl RandomSampling {
    /// Draw and evaluate random valid states until the budget runs out.
    /// The best state is tracked by the evaluator.
    pub fn run<R: Rng + ?Sized>(&self, ev: &mut Evaluator<'_>, component: &[RelId], rng: &mut R) {
        while !ev.exhausted() {
            let order = random_valid_order(ev.query().graph(), component, rng);
            ev.cost(&order);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IterativeImprovement, Method, MethodRunner};
    use ljqo_cost::MemoryCostModel;
    use ljqo_plan::validity::is_valid;
    use ljqo_workload_testutil::default_query;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    // A tiny local stand-in for the workload generator (core cannot
    // depend on ljqo-workload without a cycle), shared by this module.
    mod ljqo_workload_testutil {
        use ljqo_catalog::{Query, QueryBuilder};

        pub fn default_query() -> Query {
            QueryBuilder::new()
                .relation("a", 3000)
                .relation("b", 12)
                .relation("c", 700)
                .relation("d", 55)
                .relation("e", 1400)
                .relation("f", 90)
                .join("a", "b", 0.01)
                .join("b", "c", 0.002)
                .join("c", "d", 0.05)
                .join("d", "e", 0.001)
                .join("e", "f", 0.02)
                .join("b", "e", 0.03)
                .build()
                .unwrap()
        }
    }

    #[test]
    fn sampling_respects_budget_and_finds_valid_states() {
        let q = default_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&q, &model, 500);
        let comp: Vec<RelId> = q.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(1);
        RandomSampling.run(&mut ev, &comp, &mut rng);
        assert!(ev.exhausted());
        assert_eq!(ev.n_evals(), 500);
        let (best, _) = ev.best().unwrap();
        assert!(is_valid(q.graph(), best.rels()));
    }

    #[test]
    fn iterative_improvement_beats_random_sampling() {
        // The SG88 headline at matched budget: II's best local minimum is
        // at least as good as the best of the same number of random
        // samples — usually strictly better on average.
        let q = default_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let budget = 2_000;
        let mut wins = 0;
        let trials = 10;
        for seed in 0..trials {
            let mut ev_rs = Evaluator::with_budget(&q, &model, budget);
            let mut rng = SmallRng::seed_from_u64(seed);
            RandomSampling.run(&mut ev_rs, &comp, &mut rng);

            let mut ev_ii = Evaluator::with_budget(&q, &model, budget);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xffff);
            IterativeImprovement::default().run(&mut ev_ii, &comp, &mut rng);

            if ev_ii.best_cost() <= ev_rs.best_cost() * (1.0 + 1e-12) {
                wins += 1;
            }
        }
        assert!(
            wins >= 8,
            "II beat random sampling on only {wins}/{trials} trials"
        );
    }

    #[test]
    fn methods_beat_random_sampling_at_equal_budget() {
        let q = default_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let budget = 2_000;

        let mut ev_rs = Evaluator::with_budget(&q, &model, budget);
        let mut rng = SmallRng::seed_from_u64(9);
        RandomSampling.run(&mut ev_rs, &comp, &mut rng);

        for method in [Method::Iai, Method::Agi] {
            let mut ev = Evaluator::with_budget(&q, &model, budget);
            let mut rng = SmallRng::seed_from_u64(9);
            MethodRunner::default().run(method, &mut ev, &comp, &mut rng);
            assert!(
                ev.best_cost() <= ev_rs.best_cost() * 1.05,
                "{method} lost badly to random sampling"
            );
        }
    }
}
