//! LP-style cost lower-bound certifier.
//!
//! The paper stops a search "when we are sufficiently close to the lower
//! bound" but leaves the bound to the cost model. The model bounds
//! ([`CostModel::lower_bound`]) count unavoidable *per-relation* work
//! (builds, reads, final output); they say nothing about the unavoidable
//! *intermediate* sizes, which is where large-N plans actually spend
//! their cost. This module derives a second, structural bound in the
//! spirit of an LP relaxation: relax "the plan is one consistent join
//! order" to "every step is priced at the smallest statistics *any* plan
//! could present to it", and sum the relaxed steps.
//!
//! Concretely, for a connected component with cardinalities `c₁ ≤ c₂ ≤ …`
//! and within-component selectivities `s₁, s₂, …` (only those `≤ 1`):
//!
//! ```text
//! m_t  =  clamp(c₁·c₂·…·c_t · ∏ᵢ sᵢ)
//! ```
//!
//! lower-bounds the estimated cardinality of **any** `t`-relation
//! intermediate: the `t` smallest base cardinalities lower-bound any
//! `t`-subset product, and multiplying by *every* shrinking selectivity
//! only over-applies filters a particular subset may not contain. The
//! clamp discipline mirrors the estimator's
//! ([`ljqo_cost::estimate::clamp_card`]), and clamping is
//! monotone, so the inequality survives it.
//!
//! For a [monotone model](CostModel::monotone_join_cost) each join step
//! can then be priced at its componentwise-minimal [`JoinCtx`]:
//!
//! * **linear**: step `t` of *any* valid order joins a `(t−1)`-relation
//!   intermediate (`≥ m_{t−1}`) with a base relation (`≥ c₁`) into a
//!   `t`-relation intermediate (`≥ m_t`), at exactly `outer_rels = t−1`;
//!   a connected component never needs a cross product. Summing the
//!   relaxed steps bounds every linear plan.
//! * **tree**: any cross-product-free join tree has `N−1` binary joins;
//!   each input is an intermediate of some width (`≥ min_t m_t`), each
//!   non-root output has width `≥ 2` (`≥ min_{t≥2} m_t`), and the root
//!   emits the full result (`≥ m_N`) at width exactly `N`. This bound is
//!   valid for linear plans too — it is simply looser, having forgotten
//!   the widths.
//!
//! Both are admissible under the estimator's independence assumptions
//! (asserted against the exact DP optima in the property suite); neither
//! claims anything about true runtime cardinalities. The reported
//! `cost / lower_bound` ratio is therefore a *certificate of search
//! quality*, not of plan quality: a ratio near 1 proves the search
//! cannot be far from optimal, while a large ratio is merely silent
//! (the bound may be loose, or the plan may be bad).

use ljqo_catalog::{Query, RelId};
use ljqo_cost::estimate::clamp_card;
use ljqo_cost::{CostModel, JoinCtx};

/// Lower bounds on the cost of planning one query, per plan shape.
///
/// Produced by [`bound_report`]. Both bounds already include the model's
/// own [`CostModel::lower_bound`] where it is admissible (the linear
/// bound), so callers can use the fields directly as denominators of a
/// `cost / lower_bound` quality ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundReport {
    /// Lower bound on the cost of any valid **left-deep (linear)** plan.
    pub linear: f64,
    /// Lower bound on the cost of any **cross-product-free join tree**
    /// (bushy or linear). Looser than `linear` on linear plans; never
    /// includes [`CostModel::lower_bound`], whose per-relation build
    /// argument assumes base-relation inners.
    pub tree: f64,
}

impl BoundReport {
    /// The quality ratio `cost / bound`, or `None` when the bound is not
    /// positive (degenerate component, or a non-monotone model where
    /// only the trivial bound 0 is available).
    pub fn ratio(bound: f64, cost: f64) -> Option<f64> {
        (bound > 0.0 && cost.is_finite()).then(|| cost / bound)
    }
}

/// The per-width intermediate-cardinality floors `m_1 … m_N` for one
/// connected component (see the module docs). Exposed for the property
/// suite; most callers want [`bound_report`].
pub fn cardinality_floors(query: &Query, component: &[RelId]) -> Vec<f64> {
    let mut cards: Vec<f64> = component
        .iter()
        .map(|&r| clamp_card(query.cardinality(r)))
        .collect();
    cards.sort_unstable_by(f64::total_cmp);

    let mut in_comp = vec![false; query.n_relations()];
    for &r in component {
        in_comp[r.index()] = true;
    }
    let mut sel_prod = 1.0f64;
    for e in query.graph().edges() {
        if in_comp[e.a.index()] && in_comp[e.b.index()] && e.selectivity <= 1.0 {
            sel_prod = clamp_card(sel_prod * e.selectivity);
        }
    }

    let mut floors = Vec::with_capacity(cards.len());
    let mut card_prod = 1.0f64;
    for &c in &cards {
        card_prod = clamp_card(card_prod * c);
        floors.push(clamp_card(card_prod * sel_prod));
    }
    floors
}

/// Lower bounds for one connected component. Components of fewer than
/// two relations cost nothing and bound at zero.
pub fn component_bound(query: &Query, model: &dyn CostModel, component: &[RelId]) -> BoundReport {
    let n = component.len();
    let model_lb = model.lower_bound(query, component);
    if n < 2 {
        return BoundReport {
            linear: model_lb.max(0.0),
            tree: 0.0,
        };
    }
    if !model.monotone_join_cost() {
        // Without monotonicity a componentwise-minimal JoinCtx proves
        // nothing; fall back to the model's own bound alone.
        return BoundReport {
            linear: model_lb.max(0.0),
            tree: 0.0,
        };
    }
    let floors = cardinality_floors(query, component);
    let c_min = clamp_card(
        component
            .iter()
            .map(|&r| query.cardinality(r))
            .fold(f64::INFINITY, f64::min),
    );

    let mut linear = 0.0f64;
    for t in 2..=n {
        linear += model.join_cost(&JoinCtx {
            outer_card: floors[t - 2],
            inner_card: c_min,
            output_card: floors[t - 1],
            outer_rels: t - 1,
            is_cross_product: false,
        });
    }
    linear = linear.max(model_lb).max(0.0);

    let m_any = floors.iter().copied().fold(f64::INFINITY, f64::min);
    let m_join = floors[1..].iter().copied().fold(f64::INFINITY, f64::min);
    let generic = model.join_cost(&JoinCtx {
        outer_card: m_any,
        inner_card: m_any,
        output_card: m_join,
        outer_rels: 1,
        is_cross_product: false,
    });
    let root = model.join_cost(&JoinCtx {
        outer_card: m_any,
        inner_card: m_any,
        output_card: floors[n - 1],
        outer_rels: n - 1,
        is_cross_product: false,
    });
    let tree = ((n - 2) as f64 * generic + root).max(0.0);

    BoundReport { linear, tree }
}

/// Lower bounds for a whole query: the component bounds summed. The
/// cross products joining segments only add cost, so the sum remains
/// admissible for the full plan.
pub fn bound_report(query: &Query, model: &dyn CostModel) -> BoundReport {
    let mut linear = 0.0f64;
    let mut tree = 0.0f64;
    for comp in query.graph().components() {
        let b = component_bound(query, model, &comp);
        linear += b.linear;
        tree += b.tree;
    }
    BoundReport { linear, tree }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;
    use ljqo_cost::{FaultMode, FaultyCostModel, MemoryCostModel};

    fn q3() -> Query {
        QueryBuilder::new()
            .relation("a", 100)
            .relation("b", 1000)
            .relation("c", 10)
            .join("a", "b", 0.001)
            .join("b", "c", 0.01)
            .build()
            .unwrap()
    }

    #[test]
    fn floors_are_sorted_prefix_products_times_selectivities() {
        let q = q3();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let f = cardinality_floors(&q, &comp);
        assert_eq!(f.len(), 3);
        let sels = 0.001 * 0.01;
        assert!((f[0] - 10.0 * sels).abs() < 1e-12);
        assert!((f[1] - 10.0 * 100.0 * sels).abs() < 1e-9);
        assert!((f[2] - 10.0 * 100.0 * 1000.0 * sels).abs() < 1e-6);
    }

    #[test]
    fn linear_bound_improves_on_the_model_bound_here() {
        let q = q3();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let b = component_bound(&q, &model, &comp);
        assert!(b.linear >= model.lower_bound(&q, &comp));
        assert!(b.tree > 0.0);
    }

    #[test]
    fn bounds_hold_against_every_order_of_a_small_query() {
        let q = q3();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let b = component_bound(&q, &model, &comp);
        // All 3! = 6 permutations, valid or not — the valid ones matter.
        let ids = [RelId(0), RelId(1), RelId(2)];
        let mut checked = 0;
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    if i == j || j == k || i == k {
                        continue;
                    }
                    let order = [ids[i], ids[j], ids[k]];
                    if !ljqo_plan::validity::is_valid(q.graph(), &order) {
                        continue;
                    }
                    let c = model.order_cost(&q, &order);
                    assert!(b.linear <= c + 1e-9, "bound {} > cost {c}", b.linear);
                    assert!(b.tree <= c + 1e-9, "tree bound {} > cost {c}", b.tree);
                    checked += 1;
                }
            }
        }
        assert!(checked >= 2);
    }

    #[test]
    fn non_monotone_model_falls_back_to_model_bound() {
        let q = q3();
        let inner = MemoryCostModel::default();
        let model = FaultyCostModel::new(inner, FaultMode::NanOnKth(u64::MAX));
        let comp: Vec<RelId> = q.rel_ids().collect();
        let b = component_bound(&q, &model, &comp);
        assert_eq!(b.linear, model.lower_bound(&q, &comp));
        assert_eq!(b.tree, 0.0);
    }

    #[test]
    fn singleton_component_bounds_at_zero_tree() {
        let q = q3();
        let model = MemoryCostModel::default();
        let b = component_bound(&q, &model, &[RelId(0)]);
        assert_eq!(b.tree, 0.0);
    }

    #[test]
    fn whole_query_report_sums_components() {
        let q = QueryBuilder::new()
            .relation("a", 100)
            .relation("b", 1000)
            .relation("x", 50)
            .relation("y", 500)
            .join("a", "b", 0.001)
            .join("x", "y", 0.01)
            .build()
            .unwrap();
        let model = MemoryCostModel::default();
        let whole = bound_report(&q, &model);
        let c1 = component_bound(&q, &model, &[RelId(0), RelId(1)]);
        let c2 = component_bound(&q, &model, &[RelId(2), RelId(3)]);
        assert!((whole.linear - (c1.linear + c2.linear)).abs() < 1e-9);
        assert!((whole.tree - (c1.tree + c2.tree)).abs() < 1e-9);
    }

    #[test]
    fn ratio_helper_guards_degenerate_bounds() {
        assert_eq!(BoundReport::ratio(0.0, 10.0), None);
        assert_eq!(BoundReport::ratio(5.0, f64::INFINITY), None);
        assert_eq!(BoundReport::ratio(5.0, 10.0), Some(2.0));
    }
}
