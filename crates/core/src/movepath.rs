//! Shared move-evaluation path for the local-search methods.
//!
//! Iterative improvement and simulated annealing share the same inner
//! loop: propose a move (applied in place by the generator), cost the
//! perturbed order, then keep or undo it. [`MovePath`] abstracts the
//! costing strategy behind that loop so both methods are written once and
//! transparently use the incremental (delta) evaluator when the cost
//! model permits it:
//!
//! * **Incremental** (default): per-prefix memoized state via
//!   [`IncrementalEvaluator`]; a move is costed in `O(window)` instead of
//!   `O(N)`.
//! * **Full**: every candidate re-walks the whole order — used when the
//!   caller forces it (the methods' `full_eval` escape hatch) or when the
//!   model reports [`CostModel::supports_incremental`]`() == false`
//!   (e.g. fault injectors that hook the whole-order evaluation).
//!
//! Both paths charge identical budget: one unit per candidate evaluation,
//! because a unit prices a *candidate considered* (the paper's wall-clock
//! analog), not the instructions spent computing it.
//!
//! [`CostModel::supports_incremental`]: ljqo_cost::CostModel::supports_incremental

use ljqo_cost::{Evaluator, IncrementalEvaluator};
use ljqo_plan::{JoinOrder, Move};

/// A move-costing strategy over one evolving join order.
// One MovePath lives on the stack per descent and is consumed at its
// end; boxing the evaluator would only add indirection to the hot loop.
#[allow(clippy::large_enum_variant)]
pub(crate) enum MovePath<'a> {
    /// Re-evaluate the full order for every candidate.
    Full { order: JoinOrder },
    /// Delta evaluation against memoized prefix state.
    Inc { inc: IncrementalEvaluator<'a> },
}

impl<'a> MovePath<'a> {
    /// Choose a path for `order`, evaluate it (charging one unit either
    /// way), and return the path with the starting cost.
    pub fn begin(ev: &mut Evaluator<'a>, order: JoinOrder, force_full: bool) -> (Self, f64) {
        if force_full || !ev.model().supports_incremental() {
            let cost = ev.cost(&order);
            (MovePath::Full { order }, cost)
        } else {
            let inc = ev.begin_incremental(order);
            let cost = inc.current_cost();
            (MovePath::Inc { inc }, cost)
        }
    }

    /// The current order (with a proposed move applied, if one is being
    /// considered).
    pub fn order(&self) -> &JoinOrder {
        match self {
            MovePath::Full { order } => order,
            MovePath::Inc { inc } => inc.order(),
        }
    }

    /// Mutable order access for the move generator (which applies
    /// proposals in place).
    pub fn order_mut(&mut self) -> &mut JoinOrder {
        match self {
            MovePath::Full { order } => order,
            MovePath::Inc { inc } => inc.order_mut(),
        }
    }

    /// Cost of the applied move `mv`, charging one budget unit and
    /// updating the evaluator's best-so-far. Follow with
    /// [`MovePath::accept`] or [`MovePath::reject`].
    pub fn cost_applied(&mut self, ev: &mut Evaluator<'a>, mv: &Move) -> f64 {
        match self {
            MovePath::Full { order } => ev.cost(order),
            MovePath::Inc { inc } => ev.cost_move(inc, mv),
        }
    }

    /// Keep the evaluated move.
    pub fn accept(&mut self) {
        match self {
            MovePath::Full { .. } => {}
            MovePath::Inc { inc } => inc.commit(),
        }
    }

    /// Undo the evaluated move.
    pub fn reject(&mut self, mv: &Move) {
        match self {
            MovePath::Full { order } => mv.undo(order),
            MovePath::Inc { inc } => inc.rollback(),
        }
    }

    /// Replace the current order (a restart from a known state whose cost
    /// was already paid for when it was first evaluated — no budget is
    /// charged; the incremental path rebuilds its memoized state).
    pub fn reset_to(&mut self, order: JoinOrder) {
        match self {
            MovePath::Full { order: o } => *o = order,
            MovePath::Inc { inc } => inc.reset(order),
        }
    }

    /// Consume the path, returning the final order.
    pub fn into_order(self) -> JoinOrder {
        match self {
            MovePath::Full { order } => order,
            MovePath::Inc { inc } => inc.into_order(),
        }
    }
}
