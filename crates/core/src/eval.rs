//! The paper's evaluation statistics (§6.1).
//!
//! Solution costs are *scaled* by dividing by the best cost obtained for
//! the same query at the most generous time limit (`9N²`). Because the
//! mean is easily distorted by catastrophic plans — and "once a solution
//! is considered poor, we are not much interested in how poor it is" — any
//! scaled cost of 10 or more is an *outlying value* and is coerced to 10
//! before averaging.

/// Scaled costs at or above this value are outliers, coerced to the value
/// itself.
pub const OUTLIER_CAP: f64 = 10.0;

/// Scale `cost` against `reference` (the best cost known for the query)
/// and coerce outliers.
///
/// A non-positive or non-finite reference yields the cap (a query whose
/// best plan is free cannot be meaningfully scaled).
pub fn scaled_cost(cost: f64, reference: f64) -> f64 {
    if !(reference.is_finite() && reference > 0.0) {
        return if cost <= reference { 1.0 } else { OUTLIER_CAP };
    }
    (cost / reference).min(OUTLIER_CAP)
}

/// Mean of scaled costs over queries: `costs[q]` is one method's solution
/// cost for query `q`, `references[q]` the best cost for that query.
///
/// Panics if the slices differ in length; returns NaN for no queries.
pub fn mean_scaled_cost(costs: &[f64], references: &[f64]) -> f64 {
    assert_eq!(costs.len(), references.len());
    let sum: f64 = costs
        .iter()
        .zip(references)
        .map(|(&c, &r)| scaled_cost(c, r))
        .sum();
    sum / costs.len() as f64
}

/// Per-query best over several methods' costs: the scaling reference the
/// paper uses ("the best solution costs obtained at the time limit of
/// 9N²"). `rows[m][q]` is method `m`'s cost on query `q`.
pub fn per_query_best(rows: &[Vec<f64>]) -> Vec<f64> {
    assert!(!rows.is_empty());
    let n_q = rows[0].len();
    let mut best = vec![f64::INFINITY; n_q];
    for row in rows {
        assert_eq!(row.len(), n_q, "ragged cost matrix");
        for (b, &c) in best.iter_mut().zip(row) {
            if c < *b {
                *b = c;
            }
        }
    }
    best
}

/// Average replicates: the paper runs each algorithm twice per query with
/// different seeds and averages. `replicates[r][q]` is replicate `r`'s
/// cost on query `q`.
pub fn average_replicates(replicates: &[Vec<f64>]) -> Vec<f64> {
    assert!(!replicates.is_empty());
    let n_q = replicates[0].len();
    let mut out = vec![0.0; n_q];
    for rep in replicates {
        assert_eq!(rep.len(), n_q, "ragged replicate matrix");
        for (o, &c) in out.iter_mut().zip(rep) {
            *o += c;
        }
    }
    for o in &mut out {
        *o /= replicates.len() as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_and_outlier_coercion() {
        assert_eq!(scaled_cost(50.0, 10.0), 5.0);
        assert_eq!(scaled_cost(100.0, 10.0), 10.0); // exactly 10x -> coerced
        assert_eq!(scaled_cost(1e9, 10.0), 10.0);
        assert_eq!(scaled_cost(10.0, 10.0), 1.0);
    }

    #[test]
    fn degenerate_reference() {
        assert_eq!(scaled_cost(5.0, 0.0), OUTLIER_CAP);
        assert_eq!(scaled_cost(0.0, 0.0), 1.0);
        assert_eq!(scaled_cost(5.0, f64::INFINITY), 1.0);
    }

    #[test]
    fn mean_scaled_cost_averages() {
        let costs = [10.0, 40.0, 1e12];
        let refs = [10.0, 10.0, 10.0];
        // scaled: 1, 4, 10 -> mean 5.
        assert!((mean_scaled_cost(&costs, &refs) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn per_query_best_is_columnwise_min() {
        let rows = vec![vec![3.0, 8.0], vec![5.0, 2.0], vec![4.0, 9.0]];
        assert_eq!(per_query_best(&rows), vec![3.0, 2.0]);
    }

    #[test]
    fn replicate_averaging() {
        let reps = vec![vec![2.0, 10.0], vec![4.0, 30.0]];
        assert_eq!(average_replicates(&reps), vec![3.0, 20.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_matrix_panics() {
        let rows = vec![vec![1.0], vec![1.0, 2.0]];
        let _ = per_query_best(&rows);
    }
}
