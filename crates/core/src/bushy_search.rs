//! Local search over the **bushy** tree space.
//!
//! The paper's open problem (§2) is whether restricting the search to
//! outer linear join trees forfeits much plan quality. [`crate::bushy`]
//! answers it exactly for small components ([`optimal_bushy_dp`]); this
//! module answers it at scale: iterative improvement
//! ([`BushyIterativeImprovement`]) and simulated annealing
//! ([`BushySimulatedAnnealing`]) over arena-backed trees
//! ([`ljqo_plan::TreePlan`]), with candidates re-costed incrementally
//! along the path from the moved subtree to the root
//! ([`ljqo_cost::TreeEvaluator`]).
//!
//! The loops deliberately mirror their linear counterparts
//! ([`crate::IterativeImprovement`], [`crate::SimulatedAnnealing`]):
//! the same fail-limit and freezing rules, the same budget accounting
//! (one unit per candidate via
//! [`Evaluator::charge_eval`](ljqo_cost::Evaluator::charge_eval), plus
//! one unit per validity-rejected proposal attempt) — so a bushy run at
//! budget `τ·N²·κ` is directly comparable to a linear run at the same
//! budget. One asymmetry: the [`Evaluator`] cannot track a best *tree*
//! (its best-state channel is typed to [`JoinOrder`](ljqo_plan::JoinOrder)),
//! so the bushy loops track the best tree themselves; early stopping
//! against the model lower bound is therefore a linear-only feature.
//!
//! [`try_optimize_bushy`] is the end-to-end driver, mirroring
//! [`crate::try_optimize`]: same per-component budget split, same
//! panic isolation, and on any rung-1 failure the same linear fallback
//! ladder — a rescued linear order enters the bushy result as its
//! left-deep embedding (costs agree bit-for-bit between the two walks,
//! so no re-pricing is needed).

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_catalog::{CompiledQuery, Query, RelId};
use ljqo_cost::estimate::{clamp_card, final_result_size};
use ljqo_cost::{sanitize_cost, CostModel, Evaluator, JoinCtx, TreeEvaluator};
use ljqo_plan::{random_valid_order, TreeMoveSet, TreePlan};

use crate::bushy::{optimal_bushy_dp, BushyTree};
use crate::driver::{component_fallback, ComponentOutcome, OptimizerConfig};
use crate::error::{Degradation, OptError};
use crate::methods::{Method, MethodRunner};

impl BushyTree {
    /// Flatten the recursive tree into an arena [`TreePlan`] (leaves in
    /// left-to-right order, internals in post-order).
    pub fn to_plan(&self, compiled: &CompiledQuery) -> TreePlan {
        fn flatten(
            t: &BushyTree,
            k: usize,
            leaves: &mut Vec<RelId>,
            joins: &mut Vec<(u32, u32)>,
        ) -> u32 {
            match t {
                BushyTree::Leaf(r) => {
                    leaves.push(*r);
                    (leaves.len() - 1) as u32
                }
                BushyTree::Join(l, r) => {
                    let li = flatten(l, k, leaves, joins);
                    let ri = flatten(r, k, leaves, joins);
                    joins.push((li, ri));
                    (k + joins.len() - 1) as u32
                }
            }
        }
        let k = self.n_leaves();
        let mut leaves = Vec::with_capacity(k);
        let mut joins = Vec::with_capacity(k.saturating_sub(1));
        flatten(self, k, &mut leaves, &mut joins);
        TreePlan::from_joins(compiled, &leaves, &joins)
    }

    /// Rebuild the recursive tree from an arena plan.
    pub fn from_plan(plan: &TreePlan) -> BushyTree {
        fn build(plan: &TreePlan, id: u32) -> BushyTree {
            let n = plan.node(id);
            if n.is_leaf() {
                BushyTree::Leaf(n.rel)
            } else {
                BushyTree::Join(
                    Box::new(build(plan, n.left)),
                    Box::new(build(plan, n.right)),
                )
            }
        }
        build(plan, plan.root())
    }
}

/// Cost a [`BushyTree`] through the arena evaluator — the *same* code
/// path the local search prices candidates with, so comparing a search
/// result against a re-costed DP tree needs no floating-point tolerance.
/// (The DP's own reported cost folds subset cardinalities in a different
/// clamp order and may differ in the last bits.)
///
/// Singleton trees cost `0.0`. Requires ≤ 256 relations (the arena's
/// [`BlockMask`](ljqo_catalog::BlockMask) capacity).
pub fn bushy_tree_cost(query: &Query, model: &dyn CostModel, tree: &BushyTree) -> f64 {
    let compiled = std::sync::Arc::new(CompiledQuery::new(query));
    let plan = tree.to_plan(&compiled);
    TreeEvaluator::new(model, compiled, plan).current_cost()
}

/// Iterative improvement over tree moves — the bushy counterpart of
/// [`crate::IterativeImprovement`], with the same sampled local-minimum
/// criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BushyIterativeImprovement {
    /// Tree-move mixture used to sample adjacent trees.
    pub move_set: TreeMoveSet,
    /// Local-minimum declaration threshold, as a fraction of `n²` (same
    /// convention as the linear II).
    pub fail_factor: f64,
}

impl Default for BushyIterativeImprovement {
    fn default() -> Self {
        BushyIterativeImprovement {
            move_set: TreeMoveSet::default(),
            fail_factor: 0.25,
        }
    }
}

impl BushyIterativeImprovement {
    /// Consecutive-failure threshold for an `n`-leaf component.
    pub fn fail_limit(&self, n: usize) -> u64 {
        ((self.fail_factor * (n * n) as f64) as u64).max(32)
    }

    /// One greedy descent mutating the evaluator's current tree. Returns
    /// the cost of the local minimum reached (or of the last state when
    /// the budget ran out first). The caller has already paid for the
    /// start state.
    pub fn descend<R: Rng + ?Sized>(
        &self,
        ev: &mut Evaluator<'_>,
        te: &mut TreeEvaluator<'_>,
        rng: &mut R,
    ) -> f64 {
        let mut current = te.current_cost();
        let fail_limit = self.fail_limit(te.plan().n_leaves());
        let mut fails = 0u64;
        while fails < fail_limit && !ev.exhausted() {
            let Some((_mv, attempts)) = te.propose(&self.move_set, rng) else {
                break; // no perturbable neighborhood (tiny component)
            };
            ev.charge(u64::from(attempts) - 1);
            let candidate = te.eval_pending();
            ev.charge_eval();
            if candidate < current {
                te.commit();
                current = candidate;
                fails = 0;
            } else {
                te.rollback();
                fails += u64::from(attempts);
            }
        }
        current
    }

    /// The full bushy II method: repeated descents from the left-deep
    /// embeddings of random valid orders until the budget is exhausted.
    /// Returns the best local minimum (a greedy descent only ever
    /// accepts improvements, so observing the end of each descent
    /// suffices).
    pub fn run<R: Rng + ?Sized>(
        &self,
        ev: &mut Evaluator<'_>,
        component: &[RelId],
        rng: &mut R,
    ) -> Option<(TreePlan, f64)> {
        let model = ev.model();
        let compiled = ev.compiled().clone();
        let mut te: Option<TreeEvaluator<'_>> = None;
        let mut best: Option<(TreePlan, f64)> = None;
        while !ev.exhausted() {
            let order = random_valid_order(ev.query().graph(), component, rng);
            let plan = TreePlan::from_order(&compiled, order.rels());
            let te = match &mut te {
                Some(te) => {
                    te.reset(plan);
                    te
                }
                None => te.insert(TreeEvaluator::new(model, compiled.clone(), plan)),
            };
            ev.charge_eval(); // the start state is a candidate too
            let cost = self.descend(ev, te, rng);
            if best.as_ref().is_none_or(|b| cost < b.1) {
                best = Some((te.plan().clone(), cost));
            }
            if component.len() < 3 {
                break; // one tree shape exists; restarts would repeat it
            }
        }
        best
    }
}

/// Simulated annealing over tree moves — the bushy counterpart of
/// [`crate::SimulatedAnnealing`], with the same JAMS87 calibration,
/// chain, cooling and freezing rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BushySimulatedAnnealing {
    /// Tree-move mixture.
    pub move_set: TreeMoveSet,
    /// Chain length multiplier (`size_factor · N` proposals per
    /// temperature).
    pub size_factor: usize,
    /// Geometric cooling rate.
    pub cooling: f64,
    /// Target uphill acceptance probability at the initial temperature.
    pub init_accept: f64,
    /// Frozen after this many consecutive non-improving chains (with
    /// collapsed acceptance).
    pub frozen_chains: usize,
    /// Acceptance ratio below which a chain counts as collapsed.
    pub min_accept_ratio: f64,
    /// Re-heat from the best tree instead of stopping when frozen with
    /// budget to spare.
    pub restart_on_frozen: bool,
}

impl Default for BushySimulatedAnnealing {
    fn default() -> Self {
        BushySimulatedAnnealing {
            move_set: TreeMoveSet::default(),
            size_factor: 16,
            cooling: 0.95,
            init_accept: 0.4,
            frozen_chains: 5,
            min_accept_ratio: 0.02,
            restart_on_frozen: true,
        }
    }
}

impl BushySimulatedAnnealing {
    /// Anneal from the evaluator's current tree (whose cost the caller
    /// has already paid). Returns the best tree visited and its cost.
    ///
    /// Rejected candidates need no best-tracking: an SA rejection implies
    /// the candidate was strictly uphill of the current state, and the
    /// current state — having been evaluated — is never below the best.
    pub fn anneal<R: Rng + ?Sized>(
        &self,
        ev: &mut Evaluator<'_>,
        te: &mut TreeEvaluator<'_>,
        rng: &mut R,
    ) -> (TreePlan, f64) {
        let n = te.plan().n_leaves();
        let start_cost = te.current_cost();
        let mut best = te.plan().clone();
        let mut best_cost = start_cost;
        if n < 2 {
            return (best, best_cost);
        }

        // Calibrate T₀ by a short always-accepting random walk, exactly
        // like the linear annealer, then walk back to the start state
        // (the memo rebuild is off-budget, mirroring `MovePath::reset_to`).
        let home = te.plan().clone();
        let mut current = start_cost;
        let mut uphill_sum = 0.0f64;
        let mut uphill_n = 0u32;
        for _ in 0..20 {
            if ev.exhausted() {
                break;
            }
            let Some((_mv, attempts)) = te.propose(&self.move_set, rng) else {
                break;
            };
            ev.charge(u64::from(attempts) - 1);
            let c = te.eval_pending();
            ev.charge_eval();
            let delta = c - current;
            if delta > 0.0 && delta.is_finite() {
                uphill_sum += delta;
                uphill_n += 1;
            }
            te.commit(); // random walk: always accept during calibration
            current = c;
            if c < best_cost {
                best_cost = c;
                best.copy_from(te.plan());
            }
        }
        te.reset_from(&home);
        let t0 = if uphill_n == 0 {
            1.0
        } else {
            (uphill_sum / uphill_n as f64) / -(self.init_accept.ln())
        };

        let chain_length = (self.size_factor * n).max(4);
        let mut temp = t0;
        let mut stale_chains = 0usize;
        let mut current = start_cost;
        while !ev.exhausted() {
            let best_before = best_cost;
            let mut accepted = 0usize;
            for _ in 0..chain_length {
                if ev.exhausted() {
                    break;
                }
                let Some((_mv, attempts)) = te.propose(&self.move_set, rng) else {
                    break;
                };
                ev.charge(u64::from(attempts) - 1);
                let candidate = te.eval_pending();
                ev.charge_eval();
                let delta = candidate - current;
                let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
                if accept {
                    te.commit();
                    current = candidate;
                    accepted += 1;
                    if candidate < best_cost {
                        best_cost = candidate;
                        best.copy_from(te.plan());
                    }
                } else {
                    te.rollback();
                }
            }
            temp *= self.cooling;
            let improved = best_cost < best_before;
            let collapsed = (accepted as f64) < self.min_accept_ratio * chain_length as f64;
            if improved {
                stale_chains = 0;
            } else {
                stale_chains += 1;
            }
            if stale_chains >= self.frozen_chains && collapsed {
                if self.restart_on_frozen && !ev.exhausted() {
                    te.reset_from(&best);
                    current = best_cost;
                    temp = (t0 * 0.5).max(f64::MIN_POSITIVE);
                    stale_chains = 0;
                } else {
                    break;
                }
            }
        }
        (best, best_cost)
    }

    /// The full bushy SA method: anneal from the left-deep embedding of
    /// one random valid order.
    pub fn run<R: Rng + ?Sized>(
        &self,
        ev: &mut Evaluator<'_>,
        component: &[RelId],
        rng: &mut R,
    ) -> Option<(TreePlan, f64)> {
        let order = random_valid_order(ev.query().graph(), component, rng);
        let plan = TreePlan::from_order(ev.compiled(), order.rels());
        let mut te = TreeEvaluator::new(ev.model(), ev.compiled().clone(), plan);
        ev.charge_eval();
        Some(self.anneal(ev, &mut te, rng))
    }
}

impl MethodRunner {
    /// Run `method` on one component **in the bushy space**, returning
    /// the best tree found. [`Method::BushySa`] (and `Sa`/`Saa`/`Sak`)
    /// anneal; every other method runs bushy iterative improvement (the
    /// II/heuristic hybrids have no tree analogue — their seeds are
    /// inherently linear — so their bushy reading is plain II).
    pub fn run_bushy<R: Rng + ?Sized>(
        &self,
        method: Method,
        ev: &mut Evaluator<'_>,
        component: &[RelId],
        rng: &mut R,
    ) -> Option<(TreePlan, f64)> {
        if component.len() == 1 {
            let cost = ev.cost_slice(component);
            let plan = TreePlan::from_order(&ev.compiled().clone(), component);
            return Some((plan, cost));
        }
        match method {
            Method::BushySa | Method::Sa | Method::Saa | Method::Sak => {
                self.bushy_sa.run(ev, component, rng)
            }
            _ => self.bushy_ii.run(ev, component, rng),
        }
    }
}

/// The outcome of [`try_optimize_bushy`] — the bushy analogue of
/// [`crate::Optimized`].
#[derive(Debug, Clone)]
pub struct BushyOptimized {
    /// One join tree per join-graph component, cross products last
    /// (smallest component results first, like
    /// [`Plan`](ljqo_plan::Plan) segments).
    pub trees: Vec<BushyTree>,
    /// Estimated total cost, including cross products between segments.
    pub cost: f64,
    /// Per-segment costs, aligned with `trees`.
    pub segment_costs: Vec<f64>,
    /// Budget units consumed.
    pub units_used: u64,
    /// Plan evaluations performed.
    pub n_evals: u64,
    /// Deepest fallback rung reached across components. A degraded
    /// segment is a *linear* rescue embedded left-deep.
    pub degradation: Degradation,
    /// Whether the wall-clock deadline expired during the search.
    pub deadline_expired: bool,
}

impl BushyOptimized {
    /// Whether any segment is genuinely bushy (not outer linear).
    pub fn is_bushy(&self) -> bool {
        self.trees.iter().any(|t| !t.is_linear())
    }
}

/// Optimize `query` over the **bushy** tree space — the counterpart of
/// [`crate::try_optimize`] with identical budget semantics: the same
/// `τ·N²·κ` total, split across components by squared size with the same
/// floor, so bushy and linear runs at one configuration are directly
/// comparable.
///
/// Per component: the configured method runs in the bushy space (see
/// [`MethodRunner::run_bushy`]), panic-isolated, under the unit budget
/// and the optional deadline. Queries beyond 256 relations exceed the
/// arena's [`BlockMask`](ljqo_catalog::BlockMask) and are planned in the *linear* space
/// (their result embedded left-deep, not flagged as degradation — it is
/// the paper's own restriction, honestly applied). Any rung-1 failure
/// walks the linear fallback ladder of [`crate::try_optimize`] and
/// embeds the rescue left-deep; the embedding's cost is the order's cost
/// (the two walks agree bit-for-bit).
pub fn try_optimize_bushy(
    query: &Query,
    model: &dyn CostModel,
    config: &OptimizerConfig,
) -> Result<BushyOptimized, OptError> {
    query.validate()?;
    let components = query.graph().components();
    let n = query.n_joins().max(1);
    let total_budget = config.budget_units(n);
    let weight_sum: u64 = components
        .iter()
        .map(|c| (c.len() * c.len()) as u64)
        .sum::<u64>()
        .max(1);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let linear_only = query.n_relations() > ljqo_catalog::BlockMask::CAPACITY;

    let mut segments: Vec<(BushyTree, f64)> = Vec::with_capacity(components.len());
    let mut units_used = 0;
    let mut n_evals = 0;
    let mut degradation = Degradation::None;
    let mut deadline_expired = false;
    for (idx, comp) in components.iter().enumerate() {
        let share = total_budget.saturating_mul((comp.len() * comp.len()) as u64) / weight_sum;
        let budget = share.max(4 * comp.len() as u64);

        let mut outcome = ComponentOutcome {
            best: None,
            units_used: 0,
            n_evals: 0,
            deadline_expired: false,
            degradation: Degradation::None,
        };
        let mut tree: Option<(BushyTree, f64)> = None;

        // Rung 1, bushy edition. Same `AssertUnwindSafe` justification as
        // the linear driver: on panic the evaluators are discarded and
        // the RNG state stays usable.
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut ev = Evaluator::with_budget(query, model, budget);
            if let Some(deadline) = config.deadline {
                ev.set_deadline(deadline);
            }
            // Early stopping is linear-only: tree candidates never feed
            // `ev.best()`, so a stop threshold would never trip.
            let best = if linear_only {
                config.runner.run(config.method, &mut ev, comp, &mut rng);
                ev.best().map(|(o, c)| (BushyTree::left_deep(o.rels()), c))
            } else {
                config
                    .runner
                    .run_bushy(config.method, &mut ev, comp, &mut rng)
                    .map(|(p, c)| (BushyTree::from_plan(&p), c))
            };
            (best, ev.used(), ev.n_evals(), ev.deadline_expired())
        }));
        match attempt {
            Ok((best, used, evals, deadline_hit)) => {
                outcome.units_used = used;
                outcome.n_evals = evals;
                outcome.deadline_expired = deadline_hit;
                if let Some((t, cost)) = best {
                    let mut leaves = t.leaves();
                    leaves.sort_unstable();
                    let mut expect = comp.clone();
                    expect.sort_unstable();
                    if leaves == expect {
                        tree = Some((t, cost));
                    }
                }
            }
            Err(_) => {
                // The method (or the model under it) panicked; its
                // evaluator died with it, so its spend is unknown.
            }
        }

        // Rungs 2–4: the linear ladder, embedded left-deep. The linear
        // walk and the tree walk price a left-deep shape identically, so
        // the rescued order's cost carries over unchanged.
        if tree.is_none() {
            component_fallback(query, model, config, comp, &mut outcome);
            tree = outcome
                .best
                .take()
                .map(|(o, c)| (BushyTree::left_deep(o.rels()), c));
        }

        units_used += outcome.units_used;
        n_evals += outcome.n_evals;
        degradation = degradation.max(outcome.degradation);
        deadline_expired |= outcome.deadline_expired;
        let Some((t, cost)) = tree else {
            return Err(OptError::NoValidPlan { component: idx });
        };
        segments.push((t, cost));
    }

    let (trees, total_cost, segment_costs) = assemble_bushy(query, model, segments);
    Ok(BushyOptimized {
        trees,
        cost: total_cost,
        segment_costs,
        units_used,
        n_evals,
        degradation,
        deadline_expired,
    })
}

/// Order the per-component trees (cross products last, smallest results
/// first) and price the assembled plan — the bushy mirror of the linear
/// driver's assembly, with `outer_rels` counting the accumulated
/// relations like the linear convention does.
fn assemble_bushy(
    query: &Query,
    model: &dyn CostModel,
    mut segments: Vec<(BushyTree, f64)>,
) -> (Vec<BushyTree>, f64, Vec<f64>) {
    segments.sort_by(|a, b| {
        let sa = final_result_size(query, &a.0.leaves());
        let sb = final_result_size(query, &b.0.leaves());
        sa.total_cmp(&sb)
    });

    let total_cost = catch_unwind(AssertUnwindSafe(|| {
        let mut total: f64 = segments.iter().map(|&(_, c)| c).sum();
        let mut running = final_result_size(query, &segments[0].0.leaves());
        for (tree, _) in segments.iter().skip(1) {
            let inner = final_result_size(query, &tree.leaves());
            let output = clamp_card(running * inner);
            total += model.join_cost(&JoinCtx {
                outer_card: running,
                inner_card: inner,
                output_card: output,
                outer_rels: tree.n_leaves(),
                is_cross_product: true,
            });
            running = output;
        }
        sanitize_cost(total)
    }))
    .unwrap_or(f64::MAX);

    let segment_costs: Vec<f64> = segments.iter().map(|&(_, c)| c).collect();
    let trees = segments.into_iter().map(|(t, _)| t).collect();
    (trees, total_cost, segment_costs)
}

/// Optimality gap of a bushy search result against the exact bushy DP on
/// one component: `(search − optimum) / optimum`, with the DP tree
/// re-costed through the arena evaluator so both sides share one code
/// path (zero means bit-equal costs). `Ok(None)` for singletons.
pub fn bushy_gap_vs_dp(
    query: &Query,
    model: &dyn CostModel,
    component: &[RelId],
    search_cost: f64,
) -> Result<Option<f64>, OptError> {
    let Some((dp_tree, _dp_cost)) = optimal_bushy_dp(query, component, model)? else {
        return Ok(None);
    };
    let optimum = bushy_tree_cost(query, model, &dp_tree);
    if optimum <= 0.0 {
        return Ok(Some(0.0));
    }
    Ok(Some((search_cost - optimum) / optimum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimal_order_dp;
    use ljqo_catalog::QueryBuilder;
    use ljqo_cost::MemoryCostModel;
    use ljqo_cost::TimeLimit;

    fn chain_query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .build()
            .unwrap()
    }

    /// Two heavy chains off a hub: bushy must strictly beat linear.
    fn hub_chains_query() -> Query {
        QueryBuilder::new()
            .relation("hub", 100_000)
            .relation("l1", 80_000)
            .relation("l2", 50)
            .relation("r1", 90_000)
            .relation("r2", 60)
            .join("hub", "l1", 0.00002)
            .join("l1", "l2", 0.001)
            .join("hub", "r1", 0.00002)
            .join("r1", "r2", 0.001)
            .build()
            .unwrap()
    }

    fn config(method: Method, seed: u64) -> OptimizerConfig {
        OptimizerConfig::new(method).with_seed(seed)
    }

    #[test]
    fn bushy_tree_roundtrips_through_the_arena() {
        let q = hub_chains_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (tree, _) = optimal_bushy_dp(&q, &comp, &model).unwrap().unwrap();
        let compiled = std::sync::Arc::new(CompiledQuery::new(&q));
        let plan = tree.to_plan(&compiled);
        assert!(plan.audit(&compiled).is_ok());
        assert_eq!(BushyTree::from_plan(&plan), tree);
    }

    #[test]
    fn bushy_ii_matches_dp_optimum_on_small_queries() {
        let model = MemoryCostModel::default();
        for (q, seed) in [(chain_query(), 3u64), (hub_chains_query(), 7)] {
            let comp: Vec<RelId> = q.rel_ids().collect();
            let r = try_optimize_bushy(&q, &model, &config(Method::BushyIi, seed)).unwrap();
            assert!(!r.degradation.is_degraded());
            let gap = bushy_gap_vs_dp(&q, &model, &comp, r.segment_costs[0])
                .unwrap()
                .unwrap();
            assert!(
                gap.abs() <= 1e-9,
                "bushy II at 9N² should find the exact bushy optimum of a 4-join query, gap {gap}"
            );
        }
    }

    #[test]
    fn bushy_strictly_beats_the_linear_optimum_on_hub_chains() {
        let q = hub_chains_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (_, linear_opt) = optimal_order_dp(&q, &comp, &model).unwrap();
        for method in [Method::BushyIi, Method::BushySa] {
            let r = try_optimize_bushy(&q, &model, &config(method, 5)).unwrap();
            assert!(
                r.is_bushy() && r.cost < linear_opt,
                "{method}: {} vs linear optimum {linear_opt}",
                r.cost
            );
        }
    }

    #[test]
    fn bushy_driver_is_deterministic_and_budgeted() {
        let q = hub_chains_query();
        let model = MemoryCostModel::default();
        let cfg = config(Method::BushySa, 42);
        let a = try_optimize_bushy(&q, &model, &cfg).unwrap();
        let b = try_optimize_bushy(&q, &model, &cfg).unwrap();
        assert_eq!(a.trees, b.trees);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.units_used, b.units_used);
        let n = q.n_joins().max(1);
        let budget = TimeLimit::of(9.0).units(n, cfg.kappa);
        let slack = 64 + 4 * q.n_relations() as u64;
        assert!(a.units_used <= budget + slack);
        assert!(a.n_evals > 0);
    }

    #[test]
    fn disconnected_queries_get_late_cross_products() {
        let q = QueryBuilder::new()
            .relation("a", 500)
            .relation("b", 40)
            .relation("c", 9000)
            .relation("d", 70)
            .relation("lonely", 3)
            .join("a", "b", 0.01)
            .join("c", "d", 0.001)
            .build()
            .unwrap();
        let model = MemoryCostModel::default();
        let r = try_optimize_bushy(&q, &model, &config(Method::BushyIi, 2)).unwrap();
        assert_eq!(r.trees.len(), 3);
        // Smallest result (the singleton, 3 tuples) first.
        assert_eq!(r.trees[0], BushyTree::Leaf(RelId(4)));
        let total: usize = r.trees.iter().map(|t| t.n_leaves()).sum();
        assert_eq!(total, 5);
        assert!(r.cost.is_finite());
    }

    #[test]
    fn bushy_cost_never_exceeds_linear_at_equal_budget() {
        // Bushy II starts from left-deep embeddings, so its result can
        // only improve on some linear state; on the hub-chains shape it
        // must also end below the *linear optimum* (previous test). Here:
        // sanity across seeds on the chain query, where the optima agree.
        let q = chain_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (_, linear_opt) = optimal_order_dp(&q, &comp, &model).unwrap();
        for seed in 0..4 {
            let r = try_optimize_bushy(&q, &model, &config(Method::BushyIi, seed)).unwrap();
            assert!(
                r.cost <= linear_opt * (1.0 + 1e-12),
                "seed {seed}: {} vs {linear_opt}",
                r.cost
            );
        }
    }
}
