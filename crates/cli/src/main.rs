//! `ljqo-opt` — optimize a join query described in JSON.
//!
//! ```text
//! ljqo-opt QUERY.json [--method IAI] [--model memory|disk|multi]
//!          [--tau 9] [--kappa 5] [--seed 0] [--json] [--all-methods]
//! ```
//!
//! With `--json` the plan is emitted as machine-readable JSON; otherwise
//! an EXPLAIN-style tree is printed. `--all-methods` optimizes with all
//! nine methods and prints a comparison table.

use std::process::ExitCode;

use ljqo::prelude::*;
use ljqo_cli::QueryFile;
use ljqo_cost::MultiMethodCostModel;

struct Options {
    input: String,
    method: Method,
    model: String,
    tau: f64,
    kappa: f64,
    seed: u64,
    json: bool,
    all_methods: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ljqo-opt QUERY.json [--method II|SA|SAA|SAK|IAI|IKI|IAL|AGI|KBI]\n\
         \x20                       [--model memory|disk|multi] [--tau F] [--kappa F]\n\
         \x20                       [--seed U64] [--json] [--all-methods]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: String::new(),
        method: Method::Iai,
        model: "memory".into(),
        tau: 9.0,
        kappa: 5.0,
        seed: 0,
        json: false,
        all_methods: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--method" => {
                let v = value("--method");
                opts.method = Method::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: unknown method {v:?}");
                    usage()
                });
            }
            "--model" => opts.model = value("--model"),
            "--tau" => opts.tau = value("--tau").parse().unwrap_or_else(|_| usage()),
            "--kappa" => opts.kappa = value("--kappa").parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--json" => opts.json = true,
            "--all-methods" => opts.all_methods = true,
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with('-') => {
                opts.input = other.to_string();
            }
            other => {
                eprintln!("error: unexpected argument {other:?}");
                usage()
            }
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    opts
}

fn model_for(name: &str) -> Box<dyn CostModel> {
    match name {
        "memory" => Box::new(MemoryCostModel::default()),
        "disk" => Box::new(DiskCostModel::default()),
        "multi" => Box::new(MultiMethodCostModel::default()),
        other => {
            eprintln!("error: unknown cost model {other:?}");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let text = match std::fs::read_to_string(&opts.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };
    let file = match QueryFile::from_json(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: invalid query JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let query = match file.into_query() {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = model_for(&opts.model);

    let config_for = |method: Method| {
        OptimizerConfig::new(method)
            .with_time_limit(opts.tau)
            .with_kappa(opts.kappa)
            .with_seed(opts.seed)
    };

    if opts.all_methods {
        println!(
            "{:>6} {:>16} {:>12} {:>10}",
            "method", "cost", "evals", "units"
        );
        for method in Method::ALL {
            let r = optimize(&query, model.as_ref(), &config_for(method));
            println!(
                "{:>6} {:>16.6e} {:>12} {:>10}",
                method.name(),
                r.cost,
                r.n_evals,
                r.units_used
            );
        }
        return ExitCode::SUCCESS;
    }

    let result = optimize(&query, model.as_ref(), &config_for(opts.method));
    if opts.json {
        let order: Vec<Vec<String>> = result
            .plan
            .segments
            .iter()
            .map(|seg| {
                seg.rels()
                    .iter()
                    .map(|&r| query.relation(r).name.clone())
                    .collect()
            })
            .collect();
        let out = serde_json::json!({
            "method": opts.method.name(),
            "model": opts.model,
            "cost": result.cost,
            "segments": order,
            "evaluations": result.n_evals,
            "budget_units": result.units_used,
        });
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    } else {
        println!(
            "method {} under the {} cost model (τ = {}N², κ = {})",
            opts.method.name(),
            opts.model,
            opts.tau,
            opts.kappa
        );
        println!("estimated cost: {:.6e}", result.cost);
        println!(
            "search effort: {} evaluations / {} budget units\n",
            result.n_evals, result.units_used
        );
        print!("{}", result.plan.to_tree().explain(&query));
    }
    ExitCode::SUCCESS
}
