//! `ljqo-opt` — optimize a join query described in JSON.
//!
//! ```text
//! ljqo-opt [QUERY.json] [--method IAI] [--model memory|disk|multi]
//!          [--space linear|bushy]
//!          [--tau 9] [--kappa 5] [--seed 0] [--deadline-ms N]
//!          [--budget-schedule quadratic|capped:T|nlogn:T]
//!          [--workers N] [--cooperate] [--portfolio]
//!          [--router uniform|ucb] [--router-state PATH] [--router-epsilon F]
//!          [--cache-entries N] [--cache-shards N] [--fp-buckets N]
//!          [--workload-shape star|snowflake|cyclic] [--workload-joins N]
//!          [--qerror F] [--qerror-mode independent|correlated]
//!          [--json] [--all-methods]
//! ```
//!
//! With `--json` the plan is emitted as machine-readable JSON; otherwise
//! an EXPLAIN-style tree is printed. `--all-methods` optimizes with all
//! nine methods and prints a comparison table. `--deadline-ms` bounds the
//! wall-clock time of the search; when it (or a fault in the search)
//! forces a fallback plan, the degradation is reported in the output.
//!
//! Search space: `--space bushy` lifts the paper's outer-linear
//! restriction and searches mutable bushy trees with incremental
//! path-to-root re-costing (`--method BUSHYII` or `BUSHYSA` pick the
//! descent; the nine linear method names map onto the matching tree
//! search). The `"space"` key is always present in `--json` output, and
//! `"bushy"` reports whether any emitted segment is genuinely bushy.
//! Bushy search is a plain single-threaded solve: it rejects the plan
//! cache, parallel/portfolio/cooperate, `--qerror`, and `--all-methods`
//! flags (usage error), which are all wired to the linear plan type.
//!
//! Large-N regime: `--budget-schedule` decides how the work budget grows
//! with query size — `quadratic` is the paper's `τ·N²·κ` rule (default),
//! `capped:T` freezes the budget at `T` joins, `nlogn:T` switches to
//! `N·log N` growth past `T` (see `ljqo_cost::BudgetSchedule`). The
//! always-present `"largen"` JSON block reports the schedule, the
//! allotted budget, and the bitset-kernel tier the query size selects;
//! the always-present `"bound"` block reports the LP-style cost lower
//! bounds (`ljqo::bound`) and the plan's `cost / lower_bound` quality
//! ratio (`0` when no positive bound exists for the model).
//!
//! Workload generation: instead of a query file, `--workload-shape`
//! generates a JOB-shaped query (star, snowflake, or cyclic around a
//! fact table) with `--workload-joins` joins (default 12), seeded by
//! `--seed`. Exactly one of the positional file and `--workload-shape`
//! must be given.
//!
//! Robustness study: `--qerror F` (F > 1) perturbs the catalog by a
//! log-uniform factor of up to `F` per statistic before optimizing —
//! the optimizer sees the *observed* (distorted) catalog, and the
//! emitted plan and cost refer to it. The always-present `"robustness"`
//! JSON block then reports the plan's cost re-priced under the *true*
//! catalog (wired through the plan cache's re-costing path), the
//! perfect-information reference cost, and the regret
//! `max(0, true/reference − 1)`. `--qerror-mode` picks independent
//! per-statistic factors or per-relation correlated ones. `--method
//! CARDFREE` selects the cardinality-free structural ordering, which
//! ignores statistics entirely and is therefore immune to the
//! perturbation.
//!
//! Parallel search: `--workers N` fans each component's budget out over
//! `N` worker threads (same total budget, wall-clock speedup only);
//! `--portfolio` rotates the workers through the heterogeneous
//! II/SA/AGI/KBI portfolio instead of cloning one method; `--cooperate`
//! switches the workers from isolated (bit-deterministic) search to
//! shared best-cost pruning, which is timing-dependent but never worse
//! in plan quality at equal budget.
//!
//! Learned routing: `--router ucb` (requires `--portfolio`) splits each
//! portfolio solve's budget by the contextual-bandit shares learned for
//! the query's fingerprint class instead of uniformly — see
//! `ljqo_cache::BanditRouter`. `--router-state PATH` loads the bandit
//! state from `PATH` before the solve and saves it back afterwards, so
//! repeated invocations keep learning; a missing file is a fresh start
//! and a corrupt one degrades to uniform with a counted reset.
//! `--router-epsilon F` sets the exploration floor (clamped to `1/K`).
//! The always-present `"router"` JSON block reports the mode, the
//! query's class label, and the share vector applied.
//!
//! Plan cache: `--cache-entries N` (N > 0) routes the query through the
//! plan-cache serving path — fingerprint, lookup, validity re-check, and
//! fall-through to the cold search on a miss — exactly as a long-running
//! service would. A fresh process starts with an empty cache, so a single
//! invocation always reports a miss; the flags exist so scripts and tests
//! can exercise and snapshot the serving path. `--cache-shards` and
//! `--fp-buckets` tune the cache geometry and the log-scale statistic
//! bucketing of the fingerprint. Cache stats are always present in
//! `--json` output (with `"enabled": false` when caching is off).
//!
//! Exit codes distinguish the error classes so scripts can react:
//!
//! | code | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | success (possibly with a degraded plan)   |
//! | 2    | usage error                               |
//! | 3    | input file could not be read              |
//! | 4    | input is not valid query JSON             |
//! | 5    | catalog statistics failed validation      |
//! | 6    | optimizer could not produce any plan      |

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ljqo::cache::{classify, BanditRouter, RouterConfig};
use ljqo::parallel::PORTFOLIO;
use ljqo::prelude::*;
use ljqo::robust::{regret_under, regret_under_parallel, RegretSample};
use ljqo_cli::QueryFile;
use ljqo_cost::MultiMethodCostModel;
use ljqo_workload::{generate_job_query, JobShape, JobSpec, PerturbMode, Perturbation};

/// Exit code for unreadable input files.
const EXIT_IO: u8 = 3;
/// Exit code for malformed query JSON.
const EXIT_JSON: u8 = 4;
/// Exit code for catalogs that fail validation.
const EXIT_CATALOG: u8 = 5;
/// Exit code for total optimizer failure (no plan at all).
const EXIT_OPTIMIZER: u8 = 6;

struct Options {
    input: String,
    method: Method,
    model: String,
    space: String,
    tau: f64,
    kappa: f64,
    schedule: BudgetSchedule,
    seed: u64,
    deadline_ms: Option<u64>,
    workers: usize,
    cooperate: bool,
    portfolio: bool,
    router: String,
    router_state: Option<String>,
    router_epsilon: f64,
    cache_entries: usize,
    cache_shards: usize,
    fp_buckets: u32,
    workload_shape: Option<JobShape>,
    workload_joins: usize,
    qerror: f64,
    qerror_mode: PerturbMode,
    json: bool,
    all_methods: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ljqo-opt [QUERY.json] [--method II|SA|SAA|SAK|IAI|IKI|IAL|AGI|KBI|CARDFREE\n\
         \x20                                   |BUSHYII|BUSHYSA]\n\
         \x20                         [--model memory|disk|multi] [--space linear|bushy]\n\
         \x20                         [--tau F] [--kappa F]\n\
         \x20                         [--budget-schedule quadratic|capped:T|nlogn:T]\n\
         \x20                         [--seed U64] [--deadline-ms U64] [--workers N]\n\
         \x20                         [--cooperate] [--portfolio]\n\
         \x20                         [--router uniform|ucb] [--router-state PATH]\n\
         \x20                         [--router-epsilon F] [--cache-entries N]\n\
         \x20                         [--cache-shards N] [--fp-buckets N]\n\
         \x20                         [--workload-shape star|snowflake|cyclic]\n\
         \x20                         [--workload-joins N] [--qerror F]\n\
         \x20                         [--qerror-mode independent|correlated]\n\
         \x20                         [--json] [--all-methods]\n\
         exactly one of QUERY.json and --workload-shape is required"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: String::new(),
        method: Method::Iai,
        model: "memory".into(),
        space: "linear".into(),
        tau: 9.0,
        kappa: 5.0,
        schedule: BudgetSchedule::Quadratic,
        seed: 0,
        deadline_ms: None,
        workers: 1,
        cooperate: false,
        portfolio: false,
        router: "uniform".into(),
        router_state: None,
        router_epsilon: RouterConfig::default().epsilon,
        cache_entries: 0,
        cache_shards: 8,
        fp_buckets: 4,
        workload_shape: None,
        workload_joins: 12,
        qerror: 1.0,
        qerror_mode: PerturbMode::Independent,
        json: false,
        all_methods: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--method" => {
                let v = value("--method");
                opts.method = Method::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: unknown method {v:?}");
                    usage()
                });
            }
            "--model" => opts.model = value("--model"),
            "--space" => {
                let v = value("--space");
                if v != "linear" && v != "bushy" {
                    eprintln!("error: unknown search space {v:?} (expected linear or bushy)");
                    usage()
                }
                opts.space = v;
            }
            "--tau" => opts.tau = value("--tau").parse().unwrap_or_else(|_| usage()),
            "--kappa" => opts.kappa = value("--kappa").parse().unwrap_or_else(|_| usage()),
            "--budget-schedule" => {
                let v = value("--budget-schedule");
                opts.schedule = v.parse().unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    usage()
                });
            }
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                opts.deadline_ms = Some(value("--deadline-ms").parse().unwrap_or_else(|_| usage()));
            }
            "--workers" => {
                opts.workers = value("--workers").parse().unwrap_or_else(|_| usage());
                if opts.workers == 0 {
                    eprintln!("error: --workers must be at least 1");
                    usage()
                }
            }
            "--cooperate" => opts.cooperate = true,
            "--portfolio" => opts.portfolio = true,
            "--router" => {
                let v = value("--router");
                if v != "uniform" && v != "ucb" {
                    eprintln!("error: unknown router {v:?} (expected uniform or ucb)");
                    usage()
                }
                opts.router = v;
            }
            "--router-state" => opts.router_state = Some(value("--router-state")),
            "--router-epsilon" => {
                opts.router_epsilon = value("--router-epsilon")
                    .parse()
                    .unwrap_or_else(|_| usage());
                if !opts.router_epsilon.is_finite() || opts.router_epsilon < 0.0 {
                    eprintln!("error: --router-epsilon must be a finite value >= 0");
                    usage()
                }
            }
            "--cache-entries" => {
                opts.cache_entries = value("--cache-entries").parse().unwrap_or_else(|_| usage());
            }
            "--cache-shards" => {
                opts.cache_shards = value("--cache-shards").parse().unwrap_or_else(|_| usage());
                if opts.cache_shards == 0 {
                    eprintln!("error: --cache-shards must be at least 1");
                    usage()
                }
            }
            "--fp-buckets" => {
                opts.fp_buckets = value("--fp-buckets").parse().unwrap_or_else(|_| usage());
                if opts.fp_buckets == 0 {
                    eprintln!("error: --fp-buckets must be at least 1");
                    usage()
                }
            }
            "--workload-shape" => {
                let v = value("--workload-shape");
                opts.workload_shape = Some(JobShape::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: unknown workload shape {v:?}");
                    usage()
                }));
            }
            "--workload-joins" => {
                opts.workload_joins = value("--workload-joins")
                    .parse()
                    .unwrap_or_else(|_| usage());
                if opts.workload_joins == 0 {
                    eprintln!("error: --workload-joins must be at least 1");
                    usage()
                }
            }
            "--qerror" => {
                opts.qerror = value("--qerror").parse().unwrap_or_else(|_| usage());
                if !opts.qerror.is_finite() || opts.qerror < 1.0 {
                    eprintln!("error: --qerror must be a finite value >= 1");
                    usage()
                }
            }
            "--qerror-mode" => {
                let v = value("--qerror-mode");
                opts.qerror_mode = PerturbMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: unknown q-error mode {v:?}");
                    usage()
                });
            }
            "--json" => opts.json = true,
            "--all-methods" => opts.all_methods = true,
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with('-') => {
                opts.input = other.to_string();
            }
            other => {
                eprintln!("error: unexpected argument {other:?}");
                usage()
            }
        }
    }
    if opts.input.is_empty() == opts.workload_shape.is_none() {
        // Neither (nothing to optimize) or both (ambiguous source).
        eprintln!("error: give exactly one of QUERY.json and --workload-shape");
        usage();
    }
    if opts.router == "ucb" && !opts.portfolio {
        // The bandit splits the *portfolio* budget; without heterogeneous
        // arms there is nothing to route between.
        eprintln!("error: --router ucb requires --portfolio");
        usage();
    }
    if opts.router_state.is_some() && opts.router == "uniform" {
        eprintln!("error: --router-state requires --router ucb");
        usage();
    }
    if opts.space == "bushy" {
        // Everything downstream of these flags — the plan cache, the
        // parallel drivers, the regret replay, the nine-method table —
        // is wired to the linear `Plan` type. Refuse loudly rather
        // than silently fall back to a linear solve.
        let conflict = [
            (opts.workers > 1, "--workers"),
            (opts.portfolio, "--portfolio"),
            (opts.cooperate, "--cooperate"),
            (opts.router != "uniform", "--router"),
            (opts.cache_entries > 0, "--cache-entries"),
            (opts.qerror > 1.0, "--qerror"),
            (opts.all_methods, "--all-methods"),
        ]
        .into_iter()
        .find_map(|(on, flag)| on.then_some(flag));
        if let Some(flag) = conflict {
            eprintln!("error: {flag} requires the linear search space (drop --space bushy)");
            usage();
        }
    }
    opts
}

fn model_for(name: &str) -> Box<dyn CostModel + Sync> {
    match name {
        "memory" => Box::new(MemoryCostModel::default()),
        "disk" => Box::new(DiskCostModel::default()),
        "multi" => Box::new(MultiMethodCostModel::default()),
        other => {
            eprintln!("error: unknown cost model {other:?}");
            usage()
        }
    }
}

/// The always-present `"cache"` object of `--json` output. When caching
/// is off every stat is zero and `outcome` is `"off"`, so the schema is
/// identical either way and scripts can key on `enabled`.
fn cache_json(
    cache: Option<&PlanCache>,
    outcome: Option<CacheOutcome>,
    opts: &Options,
) -> ljqo_json::Value {
    let stats = cache.map(|c| c.stats()).unwrap_or_default();
    ljqo_json::json!({
        "enabled": cache.is_some(),
        "outcome": outcome.map(|o| o.name()).unwrap_or("off"),
        "entries": opts.cache_entries as u64,
        "shards": opts.cache_shards as u64,
        "fp_buckets": opts.fp_buckets as u64,
        "hits": stats.hits,
        "misses": stats.misses,
        "inserts": stats.inserts,
        "evictions": stats.evictions,
        "resident_entries": stats.entries as u64,
        "resident_bytes": stats.bytes as u64,
    })
}

/// The always-present `"robustness"` object of `--json` output. When no
/// q-error is injected every measurement is zero and `replay` is
/// `"off"`, so the schema is identical either way and scripts can key on
/// `enabled` — the same contract as the cache block.
fn robustness_json(sample: Option<&RegretSample>, opts: &Options) -> ljqo_json::Value {
    ljqo_json::json!({
        "enabled": sample.is_some(),
        "qerror": opts.qerror,
        "mode": opts.qerror_mode.name(),
        "workload_shape": opts.workload_shape.map(|s| s.name()).unwrap_or("file"),
        "observed_cost": sample.map(|s| s.observed_cost).unwrap_or(0.0),
        "true_cost": sample.map(|s| s.true_cost).unwrap_or(0.0),
        "reference_cost": sample.map(|s| s.reference_cost).unwrap_or(0.0),
        "regret": sample.map(|s| s.regret).unwrap_or(0.0),
        "replay": sample.map(|s| s.replay.name()).unwrap_or("off"),
        "solve_degradation": sample.map(|s| s.degradation.label()).unwrap_or("none"),
    })
}

/// The always-present `"router"` object of `--json` output: the routing
/// mode, the query's fingerprint class, and the budget-share vector the
/// portfolio applied. With `--router uniform` (the default) the shares
/// are the uniform split, so the schema is identical either way and
/// scripts can key on `enabled` — the same contract as the cache block.
fn router_json(router: Option<&BanditRouter>, query: &Query, opts: &Options) -> ljqo_json::Value {
    let class = classify(query);
    let shares = match router {
        Some(r) => r.shares(&class),
        None => vec![1.0 / PORTFOLIO.len() as f64; PORTFOLIO.len()],
    };
    ljqo_json::json!({
        "enabled": router.is_some(),
        "mode": opts.router.clone(),
        "epsilon": router.map(|r| r.effective_epsilon()).unwrap_or(0.0),
        "resets": router.map(|r| r.resets()).unwrap_or(0),
        "state_persisted": opts.router_state.is_some(),
        "class": class.label(),
        "arms": ljqo_json::Value::from(
            PORTFOLIO.iter().map(|m| m.name().to_string()).collect::<Vec<_>>()
        ),
        "shares": ljqo_json::Value::Array(
            shares.into_iter().map(ljqo_json::Value::Number).collect()
        ),
    })
}

/// The always-present `"largen"` object of `--json` output: the budget
/// schedule actually applied and the bitset-kernel tier the query size
/// selects (`mask_words` of 1 = single-register fast path, 4 = one
/// stack block, larger = blocked general path).
fn largen_json(query: &Query, config: &OptimizerConfig) -> ljqo_json::Value {
    let n = query.n_relations();
    ljqo_json::json!({
        "schedule": config.schedule.to_string(),
        "budget_allotted": config.budget_units(query.n_joins().max(1)),
        "n_relations": n as u64,
        "mask_words": ljqo::catalog::bitset::stride_for_relations(n) as u64,
    })
}

/// The always-present `"bound"` object of `--json` output: the LP-style
/// cost lower bounds and the emitted plan's quality ratio against the
/// bound for its search space (`linear` or `tree`). A ratio of `0` means
/// no positive bound exists (degenerate query, or a model without a
/// monotone cost surface).
fn bound_json(
    query: &Query,
    model: &dyn CostModel,
    cost: f64,
    linear_space: bool,
) -> ljqo_json::Value {
    let b = bound_report(query, model);
    let denom = if linear_space { b.linear } else { b.tree };
    ljqo_json::json!({
        "linear": b.linear,
        "tree": b.tree,
        "ratio": BoundReport::ratio(denom, cost).unwrap_or(0.0),
    })
}

/// Render a join tree with relation names, e.g. `((A ⋈ B) ⋈ (C ⋈ D))`.
fn render_tree(tree: &BushyTree, query: &Query) -> String {
    match tree {
        BushyTree::Leaf(r) => query.relation(*r).name.clone(),
        BushyTree::Join(l, r) => {
            format!("({} ⋈ {})", render_tree(l, query), render_tree(r, query))
        }
    }
}

/// The `--space bushy` solve: a plain single-threaded bushy-tree search,
/// reported through the same JSON schema as the linear path (with the
/// linear-only blocks present but disabled).
fn run_bushy(
    query: &Query,
    model: &dyn CostModel,
    config: &OptimizerConfig,
    opts: &Options,
) -> ExitCode {
    let result = match try_optimize_bushy(query, model, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return exit_for(&e);
        }
    };
    if opts.json {
        let segments: Vec<ljqo_json::Value> = result
            .trees
            .iter()
            .map(|tree| {
                let names: Vec<String> = tree
                    .leaves()
                    .iter()
                    .map(|&r| query.relation(r).name.clone())
                    .collect();
                ljqo_json::Value::from(names)
            })
            .collect();
        let trees: Vec<String> = result.trees.iter().map(|t| render_tree(t, query)).collect();
        let out = ljqo_json::json!({
            "method": opts.method.name(),
            "model": opts.model.clone(),
            "space": "bushy",
            "bushy": result.is_bushy(),
            "cost": result.cost,
            "segments": segments,
            "trees": trees,
            "evaluations": result.n_evals,
            "budget_units": result.units_used,
            "degradation": result.degradation.label(),
            "degraded": result.degradation.is_degraded(),
            "deadline_expired": result.deadline_expired,
            "workers": 1u64,
            "portfolio": false,
            "cooperate": false,
            "workers_failed": 0u64,
            "largen": largen_json(query, config),
            "bound": bound_json(query, model, result.cost, false),
            "cache": cache_json(None, None, opts),
            "robustness": robustness_json(None, opts),
            "router": router_json(None, query, opts),
        });
        println!("{}", out.to_string_pretty());
    } else {
        println!(
            "method {} under the {} cost model (τ = {}N², κ = {}), bushy search space",
            opts.method.name(),
            opts.model,
            opts.tau,
            opts.kappa
        );
        if opts.schedule != BudgetSchedule::Quadratic {
            println!("budget schedule: {}", opts.schedule);
        }
        println!("estimated cost: {:.6e}", result.cost);
        println!(
            "search effort: {} evaluations / {} budget units",
            result.n_evals, result.units_used
        );
        if !result.is_bushy() {
            println!("notice: the best tree found is outer linear");
        }
        if result.deadline_expired {
            println!("notice: wall-clock deadline expired during the search");
        }
        if result.degradation.is_degraded() {
            println!(
                "notice: plan degraded to the {} fallback — treat its cost as a rough bound",
                result.degradation.label()
            );
        }
        println!();
        for (tree, cost) in result.trees.iter().zip(&result.segment_costs) {
            println!("{}  [segment cost {:.6e}]", render_tree(tree, query), cost);
        }
    }
    ExitCode::SUCCESS
}

fn exit_for(err: &OptError) -> ExitCode {
    match err {
        OptError::Catalog(_) => ExitCode::from(EXIT_CATALOG),
        OptError::NoValidPlan { .. }
        | OptError::ComponentTooLarge { .. }
        | OptError::DisconnectedComponent { .. } => ExitCode::from(EXIT_OPTIMIZER),
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    // The TRUE catalog: read from the file, or generated JOB-shaped.
    let truth = if let Some(shape) = opts.workload_shape {
        generate_job_query(&JobSpec::new(shape), opts.workload_joins, opts.seed)
    } else {
        let text = match std::fs::read_to_string(&opts.input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", opts.input);
                return ExitCode::from(EXIT_IO);
            }
        };
        let file = match QueryFile::from_json(&text) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_JSON);
            }
        };
        match file.into_query() {
            Ok(q) => q,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_CATALOG);
            }
        }
    };
    // The catalog the optimizer sees: q-error-distorted when requested.
    let perturbation =
        (opts.qerror > 1.0).then(|| Perturbation::new(opts.qerror, opts.qerror_mode, opts.seed));
    let observed = perturbation.as_ref().map(|p| p.observed(&truth));
    let query = observed.clone().unwrap_or_else(|| truth.clone());
    let model = model_for(&opts.model);

    let config_for = |method: Method| {
        let mut config = OptimizerConfig::new(method)
            .with_time_limit(opts.tau)
            .with_kappa(opts.kappa)
            .with_schedule(opts.schedule)
            .with_seed(opts.seed);
        if let Some(ms) = opts.deadline_ms {
            config = config.with_deadline(Duration::from_millis(ms));
        }
        config
    };

    if opts.space == "bushy" {
        return run_bushy(&query, model.as_ref(), &config_for(opts.method), &opts);
    }

    if opts.all_methods {
        println!(
            "{:>6} {:>16} {:>12} {:>10} {:>12}",
            "method", "cost", "evals", "units", "degradation"
        );
        for method in Method::ALL {
            match try_optimize(&query, model.as_ref(), &config_for(method)) {
                Ok(r) => println!(
                    "{:>6} {:>16.6e} {:>12} {:>10} {:>12}",
                    method.name(),
                    r.cost,
                    r.n_evals,
                    r.units_used,
                    r.degradation.label()
                ),
                Err(e) => {
                    eprintln!("error: {}: {e}", method.name());
                    return exit_for(&e);
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let parallel = opts.workers > 1 || opts.portfolio || opts.cooperate;
    let cache_enabled = opts.cache_entries > 0;
    let cache = cache_enabled.then(|| {
        PlanCache::new(PlanCacheConfig {
            max_entries: opts.cache_entries,
            shards: opts.cache_shards,
            ..PlanCacheConfig::default()
        })
    });
    let fp_config = FingerprintConfig {
        buckets_per_decade: opts.fp_buckets,
    };
    let router = (opts.router == "ucb").then(|| {
        let arms: Vec<&str> = PORTFOLIO.iter().map(|m| m.name()).collect();
        let config = RouterConfig {
            epsilon: opts.router_epsilon,
            ..RouterConfig::default()
        };
        Arc::new(match &opts.router_state {
            Some(path) => BanditRouter::load(std::path::Path::new(path), &arms, config),
            None => BanditRouter::new(&arms, config),
        })
    });
    let parallelism = parallel.then(|| {
        let mut parallelism = if opts.portfolio {
            Parallelism::portfolio(opts.workers)
        } else {
            Parallelism::workers(opts.workers)
        };
        if opts.cooperate {
            parallelism = parallelism.with_cooperation(Cooperation::SharedBest);
        }
        if let Some(router) = &router {
            parallelism = parallelism.with_router(Arc::clone(router));
        }
        parallelism
    });
    let config = config_for(opts.method);
    let attempt: Result<(Optimized, Option<CacheOutcome>), OptError> = match (&cache, &parallelism)
    {
        (Some(cache), Some(par)) => {
            optimize_cached_parallel(&query, model.as_ref(), &config, par, cache, &fp_config)
                .map(|(r, o)| (r, Some(o)))
        }
        (Some(cache), None) => optimize_cached(&query, model.as_ref(), &config, cache, &fp_config)
            .map(|(r, o)| (r, Some(o))),
        (None, Some(par)) => {
            try_optimize_parallel(&query, model.as_ref(), &config, par).map(|r| (r, None))
        }
        (None, None) => try_optimize(&query, model.as_ref(), &config).map(|r| (r, None)),
    };
    let (result, cache_outcome) = match attempt {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return exit_for(&e);
        }
    };
    // The routed driver has recorded this solve's outcome in the bandit;
    // persist the updated state so the next invocation keeps learning.
    if let (Some(router), Some(path)) = (&router, &opts.router_state) {
        if let Err(e) = router.save(std::path::Path::new(path)) {
            eprintln!("warning: could not save router state to {path}: {e}");
        }
    }
    // The robustness measurement: optimize against the observed catalog,
    // replay against the truth, compare with perfect information.
    let sample: Option<RegretSample> = if perturbation.is_some() {
        let measured = match &parallelism {
            Some(par) => regret_under_parallel(&truth, &query, model.as_ref(), &config, par),
            None => regret_under(&truth, &query, model.as_ref(), &config),
        };
        match measured {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("error: robustness study failed: {e}");
                return exit_for(&e);
            }
        }
    } else {
        None
    };
    if opts.json {
        let cache_stats_json = cache_json(cache.as_ref(), cache_outcome, &opts);
        let robustness = robustness_json(sample.as_ref(), &opts);
        let order: Vec<Vec<String>> = result
            .plan
            .segments
            .iter()
            .map(|seg| {
                seg.rels()
                    .iter()
                    .map(|&r| query.relation(r).name.clone())
                    .collect()
            })
            .collect();
        let segments: Vec<ljqo_json::Value> =
            order.into_iter().map(ljqo_json::Value::from).collect();
        // Linear segments rendered as (left-deep) trees, so the schema
        // matches the bushy space key for key.
        let trees: Vec<String> = result
            .plan
            .segments
            .iter()
            .map(|seg| render_tree(&BushyTree::left_deep(seg.rels()), &query))
            .collect();
        let out = ljqo_json::json!({
            "method": opts.method.name(),
            "model": opts.model.clone(),
            "space": "linear",
            "bushy": false,
            "cost": result.cost,
            "segments": segments,
            "trees": trees,
            "evaluations": result.n_evals,
            "budget_units": result.units_used,
            "degradation": result.degradation.label(),
            "degraded": result.degradation.is_degraded(),
            "deadline_expired": result.deadline_expired,
            "workers": opts.workers as u64,
            "portfolio": opts.portfolio,
            "cooperate": opts.cooperate,
            "workers_failed": result.workers_failed as u64,
            "largen": largen_json(&query, &config),
            "bound": bound_json(&query, model.as_ref(), result.cost, true),
            "cache": cache_stats_json,
            "robustness": robustness,
            "router": router_json(router.as_deref(), &query, &opts),
        });
        println!("{}", out.to_string_pretty());
    } else {
        println!(
            "method {} under the {} cost model (τ = {}N², κ = {})",
            opts.method.name(),
            opts.model,
            opts.tau,
            opts.kappa
        );
        if opts.schedule != BudgetSchedule::Quadratic {
            println!("budget schedule: {}", opts.schedule);
        }
        println!("estimated cost: {:.6e}", result.cost);
        println!(
            "search effort: {} evaluations / {} budget units",
            result.n_evals, result.units_used
        );
        if parallel {
            println!(
                "parallel search: {} workers{}{}",
                opts.workers,
                if opts.portfolio {
                    " (II/SA/AGI/KBI portfolio)"
                } else {
                    ""
                },
                if opts.cooperate {
                    ", cooperative shared-best pruning"
                } else {
                    ""
                }
            );
        }
        if let Some(router) = &router {
            let class = classify(&query);
            let shares: Vec<String> = router
                .shares(&class)
                .iter()
                .map(|s| format!("{s:.3}"))
                .collect();
            println!(
                "learned routing: class {} → shares [{}] (ε = {}, {} reset(s))",
                class.label(),
                shares.join(", "),
                router.effective_epsilon(),
                router.resets()
            );
        }
        if let (Some(cache), Some(outcome)) = (&cache, cache_outcome) {
            let s = cache.stats();
            println!(
                "plan cache: {} ({} entries / {} shards, {} hits / {} misses)",
                outcome.name(),
                s.entries,
                cache.n_shards(),
                s.hits,
                s.misses
            );
        }
        if let Some(s) = &sample {
            println!(
                "robustness: q-error {} ({}) injected — believed cost {:.6e}, \
                 true cost {:.6e}, perfect-information reference {:.6e}",
                opts.qerror,
                opts.qerror_mode.name(),
                s.observed_cost,
                s.true_cost,
                s.reference_cost
            );
            println!(
                "regret: {:.4} (cache replay: {})",
                s.regret,
                s.replay.name()
            );
        }
        if result.workers_failed > 0 {
            println!(
                "notice: {} worker(s) failed and were isolated",
                result.workers_failed
            );
        }
        if result.deadline_expired {
            println!("notice: wall-clock deadline expired during the search");
        }
        if result.degradation.is_degraded() {
            println!(
                "notice: plan degraded to the {} fallback — treat its cost as a rough bound",
                result.degradation.label()
            );
        }
        println!();
        print!("{}", result.plan.to_tree().explain(&query));
    }
    ExitCode::SUCCESS
}
