//! # ljqo-cli — file format and plumbing for the `ljqo-opt` binary
//!
//! The CLI reads a query description from JSON, optimizes it with one of
//! the paper's nine methods under a chosen cost model, and prints the
//! plan (text or JSON). The input format is deliberately small:
//!
//! ```json
//! {
//!   "relations": [
//!     { "name": "orders", "cardinality": 1500000 },
//!     { "name": "customers", "cardinality": 150000, "selections": [0.2] }
//!   ],
//!   "joins": [
//!     { "left": "orders", "right": "customers", "selectivity": 0.0000066 },
//!     { "left": "orders", "right": "customers",
//!       "distinct_left": 150000, "distinct_right": 150000 }
//!   ]
//! }
//! ```
//!
//! A join must carry either an explicit `selectivity` or distinct counts
//! (from which the uniformity assumption `J = 1/max(D_l, D_r)` derives
//! one).

#![warn(missing_docs)]
#![warn(clippy::all)]

use serde::{Deserialize, Serialize};

use ljqo_catalog::{CatalogError, Query, QueryBuilder};

/// A relation in the input file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelationSpec {
    /// Relation name; joins refer to it.
    pub name: String,
    /// Base cardinality.
    pub cardinality: u64,
    /// Selectivities of pushed-down selections (optional).
    #[serde(default)]
    pub selections: Vec<f64>,
}

/// A join predicate in the input file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinSpec {
    /// Name of one side.
    pub left: String,
    /// Name of the other side.
    pub right: String,
    /// Explicit join selectivity (overrides distinct counts).
    #[serde(default)]
    pub selectivity: Option<f64>,
    /// Distinct values in the left join column.
    #[serde(default)]
    pub distinct_left: Option<f64>,
    /// Distinct values in the right join column.
    #[serde(default)]
    pub distinct_right: Option<f64>,
}

/// The top-level query file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryFile {
    /// Relations, in id order.
    pub relations: Vec<RelationSpec>,
    /// Join predicates.
    pub joins: Vec<JoinSpec>,
}

/// Errors turning a [`QueryFile`] into a [`Query`].
#[derive(Debug)]
pub enum FileError {
    /// A join referenced an unknown relation name.
    UnknownRelation(String),
    /// A join carried neither a selectivity nor distinct counts.
    UnderspecifiedJoin(String, String),
    /// Catalog-level validation failed.
    Catalog(CatalogError),
}

impl std::fmt::Display for FileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            FileError::UnderspecifiedJoin(l, r) => write!(
                f,
                "join {l}-{r} needs either a selectivity or distinct counts"
            ),
            FileError::Catalog(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FileError {}

impl QueryFile {
    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Convert into a validated [`Query`].
    pub fn into_query(self) -> Result<Query, FileError> {
        let mut builder = QueryBuilder::new();
        let mut names = Vec::with_capacity(self.relations.len());
        for rel in &self.relations {
            names.push(rel.name.clone());
            builder = builder.relation(&rel.name, rel.cardinality);
            // Selections are attached via repeated with_selection through
            // the builder's dedicated method.
            for &sel in &rel.selections {
                // Re-adding the relation would duplicate it; instead rebuild
                // via relation_with_selection is not chainable for multiple
                // selections, so we push onto the last relation directly.
                builder = builder.add_selection_to_last(sel);
            }
        }
        let check = |name: &String| -> Result<(), FileError> {
            if names.contains(name) {
                Ok(())
            } else {
                Err(FileError::UnknownRelation(name.clone()))
            }
        };
        for join in &self.joins {
            check(&join.left)?;
            check(&join.right)?;
            builder = match (join.selectivity, join.distinct_left, join.distinct_right) {
                (Some(s), _, _) => builder.join(&join.left, &join.right, s),
                (None, Some(dl), Some(dr)) => {
                    builder.join_on_distincts(&join.left, &join.right, dl, dr)
                }
                _ => {
                    return Err(FileError::UnderspecifiedJoin(
                        join.left.clone(),
                        join.right.clone(),
                    ))
                }
            };
        }
        builder.build().map_err(FileError::Catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "relations": [
            { "name": "a", "cardinality": 1000, "selections": [0.5, 0.2] },
            { "name": "b", "cardinality": 200 },
            { "name": "c", "cardinality": 50 }
        ],
        "joins": [
            { "left": "a", "right": "b", "selectivity": 0.01 },
            { "left": "b", "right": "c", "distinct_left": 40, "distinct_right": 25 }
        ]
    }"#;

    #[test]
    fn parse_and_convert() {
        let file = QueryFile::from_json(SAMPLE).unwrap();
        let query = file.into_query().unwrap();
        assert_eq!(query.n_relations(), 3);
        assert_eq!(query.n_joins(), 2);
        // Selections applied: 1000·0.5·0.2 = 100.
        assert_eq!(query.cardinality(ljqo_catalog::RelId(0)), 100.0);
        // Second join derives selectivity from distincts: 1/40.
        let e = &query.graph().edges()[1];
        assert!((e.selectivity - 1.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_relation_is_reported() {
        let mut file = QueryFile::from_json(SAMPLE).unwrap();
        file.joins[0].right = "zzz".into();
        assert!(matches!(
            file.into_query(),
            Err(FileError::UnknownRelation(n)) if n == "zzz"
        ));
    }

    #[test]
    fn underspecified_join_is_reported() {
        let mut file = QueryFile::from_json(SAMPLE).unwrap();
        file.joins[0].selectivity = None;
        assert!(matches!(
            file.into_query(),
            Err(FileError::UnderspecifiedJoin(..))
        ));
    }

    #[test]
    fn roundtrips_through_json() {
        let file = QueryFile::from_json(SAMPLE).unwrap();
        let json = serde_json::to_string(&file).unwrap();
        let again = QueryFile::from_json(&json).unwrap();
        assert_eq!(
            again.into_query().unwrap(),
            QueryFile::from_json(SAMPLE).unwrap().into_query().unwrap()
        );
    }
}
