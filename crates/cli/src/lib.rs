//! # ljqo-cli — file format and plumbing for the `ljqo-opt` binary
//!
//! The CLI reads a query description from JSON, optimizes it with one of
//! the paper's nine methods under a chosen cost model, and prints the
//! plan (text or JSON). The input format is deliberately small:
//!
//! ```json
//! {
//!   "relations": [
//!     { "name": "orders", "cardinality": 1500000 },
//!     { "name": "customers", "cardinality": 150000, "selections": [0.2] }
//!   ],
//!   "joins": [
//!     { "left": "orders", "right": "customers", "selectivity": 0.0000066 },
//!     { "left": "orders", "right": "customers",
//!       "distinct_left": 150000, "distinct_right": 150000 }
//!   ]
//! }
//! ```
//!
//! A join must carry either an explicit `selectivity` or distinct counts
//! (from which the uniformity assumption `J = 1/max(D_l, D_r)` derives
//! one).

#![warn(missing_docs)]
#![warn(clippy::all)]

use ljqo_catalog::{CatalogError, JoinEdge, Query, QueryBuilder};
use ljqo_json::Value;

/// A relation in the input file.
#[derive(Debug, Clone)]
pub struct RelationSpec {
    /// Relation name; joins refer to it.
    pub name: String,
    /// Base cardinality.
    pub cardinality: u64,
    /// Selectivities of pushed-down selections (optional).
    pub selections: Vec<f64>,
}

/// A join predicate in the input file.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Name of one side.
    pub left: String,
    /// Name of the other side.
    pub right: String,
    /// Explicit join selectivity (overrides distinct counts).
    pub selectivity: Option<f64>,
    /// Distinct values in the left join column.
    pub distinct_left: Option<f64>,
    /// Distinct values in the right join column.
    pub distinct_right: Option<f64>,
}

/// The top-level query file.
#[derive(Debug, Clone)]
pub struct QueryFile {
    /// Relations, in id order.
    pub relations: Vec<RelationSpec>,
    /// Join predicates.
    pub joins: Vec<JoinSpec>,
}

/// Errors turning JSON text into a [`Query`].
#[derive(Debug)]
pub enum FileError {
    /// The input is not well-formed JSON, or a field has the wrong shape.
    Json(String),
    /// A join referenced an unknown relation name.
    UnknownRelation(String),
    /// A join carried neither a selectivity nor distinct counts.
    UnderspecifiedJoin(String, String),
    /// Catalog-level validation failed.
    Catalog(CatalogError),
}

impl std::fmt::Display for FileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileError::Json(msg) => write!(f, "invalid query JSON: {msg}"),
            FileError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            FileError::UnderspecifiedJoin(l, r) => write!(
                f,
                "join {l}-{r} needs either a selectivity or distinct counts"
            ),
            FileError::Catalog(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FileError {}

fn bad(msg: impl Into<String>) -> FileError {
    FileError::Json(msg.into())
}

/// A number field, accepted only if it is a JSON number (not a string or
/// null) — malformed statistics must fail parsing, not turn into NaN.
fn number_field(v: &Value, key: &str, context: &str) -> Result<Option<f64>, FileError> {
    match v.get(key) {
        None => Ok(None),
        Some(n) => n
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad(format!("{context}: field {key:?} must be a number"))),
    }
}

fn string_field(v: &Value, key: &str, context: &str) -> Result<String, FileError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("{context}: missing string field {key:?}")))
}

impl QueryFile {
    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<Self, FileError> {
        let root = ljqo_json::parse(text).map_err(|e| bad(e.to_string()))?;
        let relations = root
            .get("relations")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("top level needs a \"relations\" array"))?;
        let joins = root
            .get("joins")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("top level needs a \"joins\" array"))?;

        let relations = relations
            .iter()
            .enumerate()
            .map(|(i, rel)| {
                let context = format!("relation #{i}");
                let name = string_field(rel, "name", &context)?;
                let cardinality =
                    rel.get("cardinality")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| {
                            bad(format!(
                                "{context}: \"cardinality\" must be a non-negative integer"
                            ))
                        })?;
                let selections = match rel.get("selections") {
                    None => Vec::new(),
                    Some(s) => s
                        .as_array()
                        .ok_or_else(|| bad(format!("{context}: \"selections\" must be an array")))?
                        .iter()
                        .map(|sel| {
                            sel.as_f64().ok_or_else(|| {
                                bad(format!("{context}: selections must be numbers"))
                            })
                        })
                        .collect::<Result<Vec<f64>, FileError>>()?,
                };
                Ok(RelationSpec {
                    name,
                    cardinality,
                    selections,
                })
            })
            .collect::<Result<Vec<_>, FileError>>()?;

        let joins = joins
            .iter()
            .enumerate()
            .map(|(i, join)| {
                let context = format!("join #{i}");
                Ok(JoinSpec {
                    left: string_field(join, "left", &context)?,
                    right: string_field(join, "right", &context)?,
                    selectivity: number_field(join, "selectivity", &context)?,
                    distinct_left: number_field(join, "distinct_left", &context)?,
                    distinct_right: number_field(join, "distinct_right", &context)?,
                })
            })
            .collect::<Result<Vec<_>, FileError>>()?;

        Ok(QueryFile { relations, joins })
    }

    /// Serialize a live [`Query`] into the file format, preserving every
    /// statistic exactly: relations keep their base cardinality and
    /// selection selectivities, and joins carry *both* the selectivity
    /// and the distinct counts so [`into_query`](QueryFile::into_query)
    /// reconstructs bit-identical catalog statistics. This is what lets
    /// the serving protocol ship generated workloads over the wire
    /// without perturbing costs.
    pub fn from_query(query: &Query) -> Self {
        let relations = query
            .relations()
            .iter()
            .map(|r| RelationSpec {
                name: r.name.clone(),
                cardinality: r.base_cardinality,
                selections: r.selections.iter().map(|s| s.selectivity).collect(),
            })
            .collect();
        let joins = query
            .graph()
            .edges()
            .iter()
            .map(|e| JoinSpec {
                left: query.relation(e.a).name.clone(),
                right: query.relation(e.b).name.clone(),
                selectivity: Some(e.selectivity),
                distinct_left: Some(e.distinct_a),
                distinct_right: Some(e.distinct_b),
            })
            .collect();
        QueryFile { relations, joins }
    }

    /// Render back to JSON (used by tests and tooling round-trips).
    pub fn to_json(&self) -> Value {
        let relations: Vec<Value> = self
            .relations
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("name".to_string(), Value::from(r.name.as_str())),
                    ("cardinality".to_string(), Value::from(r.cardinality)),
                ];
                if !r.selections.is_empty() {
                    fields.push(("selections".to_string(), Value::from(r.selections.clone())));
                }
                Value::Object(fields)
            })
            .collect();
        let joins: Vec<Value> = self
            .joins
            .iter()
            .map(|j| {
                let mut fields = vec![
                    ("left".to_string(), Value::from(j.left.as_str())),
                    ("right".to_string(), Value::from(j.right.as_str())),
                ];
                for (key, v) in [
                    ("selectivity", j.selectivity),
                    ("distinct_left", j.distinct_left),
                    ("distinct_right", j.distinct_right),
                ] {
                    if let Some(v) = v {
                        fields.push((key.to_string(), Value::from(v)));
                    }
                }
                Value::Object(fields)
            })
            .collect();
        ljqo_json::json!({ "relations": relations, "joins": joins })
    }

    /// Convert into a validated [`Query`].
    pub fn into_query(self) -> Result<Query, FileError> {
        let mut builder = QueryBuilder::new();
        let mut names = Vec::with_capacity(self.relations.len());
        for rel in &self.relations {
            names.push(rel.name.clone());
            builder = builder.relation(&rel.name, rel.cardinality);
            // Selections are attached via repeated with_selection through
            // the builder's dedicated method.
            for &sel in &rel.selections {
                // Re-adding the relation would duplicate it; instead rebuild
                // via relation_with_selection is not chainable for multiple
                // selections, so we push onto the last relation directly.
                builder = builder.add_selection_to_last(sel);
            }
        }
        let check = |name: &String| -> Result<(), FileError> {
            if names.contains(name) {
                Ok(())
            } else {
                Err(FileError::UnknownRelation(name.clone()))
            }
        };
        let id_of = |name: &String| names.iter().position(|n| n == name).unwrap();
        for join in &self.joins {
            check(&join.left)?;
            check(&join.right)?;
            builder = match (join.selectivity, join.distinct_left, join.distinct_right) {
                // Fully specified: construct the edge exactly as given,
                // so a file produced by `from_query` round-trips
                // bit-for-bit (the convenience constructors below derive
                // one statistic from the other).
                (Some(s), Some(dl), Some(dr)) => builder.join_ids(JoinEdge::new(
                    id_of(&join.left),
                    id_of(&join.right),
                    s,
                    dl,
                    dr,
                )),
                (Some(s), _, _) => builder.join(&join.left, &join.right, s),
                (None, Some(dl), Some(dr)) => {
                    builder.join_on_distincts(&join.left, &join.right, dl, dr)
                }
                _ => {
                    return Err(FileError::UnderspecifiedJoin(
                        join.left.clone(),
                        join.right.clone(),
                    ))
                }
            };
        }
        builder.build().map_err(FileError::Catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "relations": [
            { "name": "a", "cardinality": 1000, "selections": [0.5, 0.2] },
            { "name": "b", "cardinality": 200 },
            { "name": "c", "cardinality": 50 }
        ],
        "joins": [
            { "left": "a", "right": "b", "selectivity": 0.01 },
            { "left": "b", "right": "c", "distinct_left": 40, "distinct_right": 25 }
        ]
    }"#;

    #[test]
    fn parse_and_convert() {
        let file = QueryFile::from_json(SAMPLE).unwrap();
        let query = file.into_query().unwrap();
        assert_eq!(query.n_relations(), 3);
        assert_eq!(query.n_joins(), 2);
        // Selections applied: 1000·0.5·0.2 = 100.
        assert_eq!(query.cardinality(ljqo_catalog::RelId(0)), 100.0);
        // Second join derives selectivity from distincts: 1/40.
        let e = &query.graph().edges()[1];
        assert!((e.selectivity - 1.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_relation_is_reported() {
        let mut file = QueryFile::from_json(SAMPLE).unwrap();
        file.joins[0].right = "zzz".into();
        assert!(matches!(
            file.into_query(),
            Err(FileError::UnknownRelation(n)) if n == "zzz"
        ));
    }

    #[test]
    fn underspecified_join_is_reported() {
        let mut file = QueryFile::from_json(SAMPLE).unwrap();
        file.joins[0].selectivity = None;
        assert!(matches!(
            file.into_query(),
            Err(FileError::UnderspecifiedJoin(..))
        ));
    }

    #[test]
    fn from_query_roundtrips_statistics_exactly() {
        use ljqo_workload::{generate_job_query, JobShape, JobSpec};
        for shape in JobShape::ALL {
            for seed in 0..4 {
                let q = generate_job_query(&JobSpec::new(shape), 10, seed);
                let text = QueryFile::from_query(&q).to_json().to_string_compact();
                let back = QueryFile::from_json(&text).unwrap().into_query().unwrap();
                assert_eq!(back, q, "{shape:?} seed {seed}");
            }
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let file = QueryFile::from_json(SAMPLE).unwrap();
        let json = file.to_json().to_string_compact();
        let again = QueryFile::from_json(&json).unwrap();
        assert_eq!(
            again.into_query().unwrap(),
            QueryFile::from_json(SAMPLE).unwrap().into_query().unwrap()
        );
    }
}
