//! End-to-end: the checked-in sample query file parses and optimizes.

use ljqo::prelude::*;
use ljqo_cli::QueryFile;

fn sample_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/data/sample_query.json")
}

#[test]
fn sample_query_file_optimizes_under_all_models() {
    let text = std::fs::read_to_string(sample_path()).expect("sample file exists");
    let query = QueryFile::from_json(&text)
        .expect("sample parses")
        .into_query()
        .expect("sample validates");
    assert_eq!(query.n_relations(), 6);
    assert_eq!(query.n_joins(), 5);

    let memory = MemoryCostModel::default();
    let disk = DiskCostModel::default();
    let multi = ljqo_cost::MultiMethodCostModel::default();
    for model in [
        &memory as &dyn CostModel,
        &disk as &dyn CostModel,
        &multi as &dyn CostModel,
    ] {
        let r = optimize(
            &query,
            model,
            &OptimizerConfig::new(Method::Iai).with_seed(1),
        );
        assert_eq!(r.plan.n_relations(), 6);
        assert!(r.cost.is_finite() && r.cost > 0.0, "{}", model.name());
    }
}

#[test]
fn sample_methods_agree_on_ranking_direction() {
    let text = std::fs::read_to_string(sample_path()).unwrap();
    let query = QueryFile::from_json(&text).unwrap().into_query().unwrap();
    let model = MemoryCostModel::default();
    // IAI at 9N² must not lose to a 0.3N² run of itself.
    let long = optimize(
        &query,
        &model,
        &OptimizerConfig::new(Method::Iai).with_seed(2),
    );
    let short = optimize(
        &query,
        &model,
        &OptimizerConfig::new(Method::Iai)
            .with_seed(2)
            .with_time_limit(0.3),
    );
    assert!(long.cost <= short.cost);
}
