//! Golden-file test for the `--json` output schema.
//!
//! Snapshots the set of key paths (not values) the CLI emits, so any
//! field rename, removal, or addition — including the cache stats block —
//! shows up as a reviewable diff against the committed golden file.
//!
//! To update after an intentional schema change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p ljqo-cli --test json_schema_golden
//! ```

use std::path::PathBuf;
use std::process::Command;

fn sample_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/data/sample_query.json")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/json_schema.txt")
}

/// Collect every key path in `value`, descending objects (`a.b`) and the
/// first element of arrays (`a[]`).
fn key_paths(prefix: &str, value: &ljqo_json::Value, out: &mut Vec<String>) {
    if let Some(fields) = value.as_object() {
        for (k, v) in fields {
            let path = if prefix.is_empty() {
                k.clone()
            } else {
                format!("{prefix}.{k}")
            };
            out.push(path.clone());
            key_paths(&path, v, out);
        }
    } else if let Some(items) = value.as_array() {
        if let Some(first) = items.first() {
            key_paths(&format!("{prefix}[]"), first, out);
        }
    }
}

fn run_cli(extra: &[&str]) -> ljqo_json::Value {
    let out = Command::new(env!("CARGO_BIN_EXE_ljqo-opt"))
        .arg(sample_path())
        .arg("--json")
        .args(extra)
        .output()
        .expect("CLI binary runs");
    assert!(
        out.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    ljqo_json::parse(&String::from_utf8_lossy(&out.stdout)).expect("CLI emits valid JSON")
}

/// Like [`run_cli`] but with no positional query file — for invocations
/// that generate their workload via `--workload-shape`.
fn run_cli_generated(extra: &[&str]) -> ljqo_json::Value {
    let out = Command::new(env!("CARGO_BIN_EXE_ljqo-opt"))
        .arg("--json")
        .args(extra)
        .output()
        .expect("CLI binary runs");
    assert!(
        out.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    ljqo_json::parse(&String::from_utf8_lossy(&out.stdout)).expect("CLI emits valid JSON")
}

#[test]
fn json_schema_matches_the_golden_file() {
    // Four invocations: caching off (the default), caching on, a
    // generated workload with an injected q-error, and the bushy search
    // space. The schema must be identical every way — the cache and
    // robustness blocks are always present, and the bushy path mirrors
    // the linear keys — so all four feed one snapshot.
    let mut paths = Vec::new();
    key_paths("", &run_cli(&[]), &mut paths);
    key_paths(
        "",
        &run_cli(&["--space", "bushy", "--method", "BUSHYII"]),
        &mut paths,
    );
    key_paths(
        "",
        &run_cli(&[
            "--cache-entries",
            "32",
            "--cache-shards",
            "2",
            "--fp-buckets",
            "8",
        ]),
        &mut paths,
    );
    key_paths(
        "",
        &run_cli_generated(&[
            "--workload-shape",
            "snowflake",
            "--workload-joins",
            "8",
            "--qerror",
            "10",
            "--qerror-mode",
            "correlated",
            "--method",
            "CARDFREE",
        ]),
        &mut paths,
    );
    paths.sort();
    paths.dedup();
    let got = paths.join("\n") + "\n";

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path(), &got).expect("golden file is writable");
        return;
    }
    let want = std::fs::read_to_string(golden_path())
        .expect("golden file exists (run with UPDATE_GOLDEN=1 to create it)");
    assert_eq!(
        got, want,
        "JSON schema drifted from the golden file; if intentional, \
         re-run with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn bushy_space_reports_trees_and_rejects_linear_only_flags() {
    // `--space bushy` emits the same schema with `"space": "bushy"`,
    // per-segment rendered trees, and a cost no worse than the linear
    // solve of the same query at the same budget and seed.
    let bushy = run_cli(&["--space", "bushy", "--method", "BUSHYII", "--seed", "3"]);
    assert_eq!(bushy.get("space").and_then(|v| v.as_str()), Some("bushy"));
    assert_eq!(
        bushy.get("method").and_then(|v| v.as_str()),
        Some("BUSHYII")
    );
    let bushy_cost = bushy.get("cost").and_then(|v| v.as_f64()).unwrap();
    assert!(bushy_cost.is_finite() && bushy_cost > 0.0);
    let trees = bushy.get("trees").and_then(|v| v.as_array()).unwrap();
    let segments = bushy.get("segments").and_then(|v| v.as_array()).unwrap();
    assert_eq!(trees.len(), segments.len());
    for tree in trees {
        let rendered = tree.as_str().expect("trees are rendered strings");
        assert!(rendered.contains('⋈') || !rendered.contains('('));
    }

    let linear = run_cli(&["--seed", "3"]);
    assert_eq!(linear.get("space").and_then(|v| v.as_str()), Some("linear"));
    assert_eq!(linear.get("bushy").and_then(|v| v.as_bool()), Some(false));
    let linear_cost = linear.get("cost").and_then(|v| v.as_f64()).unwrap();
    assert!(
        bushy_cost <= linear_cost * (1.0 + 1e-9),
        "bushy ({bushy_cost:e}) must not lose to linear ({linear_cost:e})"
    );

    // The linear-only flags are refused loudly (usage error, exit 2),
    // never silently downgraded to a linear solve.
    for conflict in [
        ["--workers", "2"].as_slice(),
        ["--portfolio"].as_slice(),
        ["--cooperate"].as_slice(),
        ["--cache-entries", "8"].as_slice(),
        ["--qerror", "10"].as_slice(),
        ["--all-methods"].as_slice(),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_ljqo-opt"))
            .arg(sample_path())
            .args(["--space", "bushy"])
            .args(conflict)
            .output()
            .expect("CLI binary runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{conflict:?} with --space bushy must be a usage error"
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("linear search space"),
            "{conflict:?} error message names the conflict"
        );
    }
}

#[test]
fn cache_block_reports_the_serving_outcome() {
    // Value-level checks on the cache block (the golden file only pins
    // the schema): a cold process always reports one miss + one insert
    // when caching is on, and `enabled: false` with outcome "off" when
    // it is not.
    let on = run_cli(&["--cache-entries", "16"]);
    let cache = on.get("cache").expect("cache block present");
    assert_eq!(cache.get("enabled").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        cache.get("outcome").and_then(|v| v.as_str()),
        Some("miss"),
        "a fresh process has an empty cache"
    );
    assert_eq!(cache.get("misses").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(cache.get("inserts").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        cache.get("resident_entries").and_then(|v| v.as_u64()),
        Some(1)
    );

    let off = run_cli(&[]);
    let cache = off.get("cache").expect("cache block present even when off");
    assert_eq!(cache.get("enabled").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(cache.get("outcome").and_then(|v| v.as_str()), Some("off"));
    assert_eq!(cache.get("hits").and_then(|v| v.as_u64()), Some(0));
}

#[test]
fn robustness_block_reports_the_regret_study() {
    // No q-error: the block is present but disabled, with zeroed
    // measurements — same always-present contract as the cache block.
    let off = run_cli(&[]);
    let r = off.get("robustness").expect("robustness block present");
    assert_eq!(r.get("enabled").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(r.get("replay").and_then(|v| v.as_str()), Some("off"));
    assert_eq!(r.get("regret").and_then(|v| v.as_f64()), Some(0.0));
    assert_eq!(
        r.get("workload_shape").and_then(|v| v.as_str()),
        Some("file")
    );

    // With an injected q-error on a generated star workload, the study
    // runs: every measurement is a positive finite cost and the regret
    // is non-negative.
    let on = run_cli_generated(&["--workload-shape", "star", "--qerror", "10", "--seed", "5"]);
    let r = on.get("robustness").expect("robustness block present");
    assert_eq!(r.get("enabled").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(r.get("qerror").and_then(|v| v.as_f64()), Some(10.0));
    assert_eq!(
        r.get("mode").and_then(|v| v.as_str()),
        Some("independent"),
        "independent is the default mode"
    );
    assert_eq!(
        r.get("workload_shape").and_then(|v| v.as_str()),
        Some("star")
    );
    for key in ["observed_cost", "true_cost", "reference_cost"] {
        let v = r.get(key).and_then(|v| v.as_f64()).unwrap();
        assert!(v.is_finite() && v > 0.0, "{key} = {v}");
    }
    let regret = r.get("regret").and_then(|v| v.as_f64()).unwrap();
    assert!(regret >= 0.0 && regret.is_finite(), "regret = {regret}");
    let replay = r.get("replay").and_then(|v| v.as_str()).unwrap();
    assert!(
        replay == "hit" || replay == "hit_recosted" || replay == "stale",
        "unexpected replay outcome {replay:?}"
    );

    // CARDFREE ignores statistics, so its believed and true plan are the
    // same structural order: the method must run end to end under
    // perturbation without degradation.
    let cardfree = run_cli_generated(&[
        "--workload-shape",
        "cyclic",
        "--qerror",
        "100",
        "--method",
        "CARDFREE",
    ]);
    assert_eq!(
        cardfree.get("method").and_then(|v| v.as_str()),
        Some("CARDFREE")
    );
    assert_eq!(
        cardfree.get("degradation").and_then(|v| v.as_str()),
        Some("none")
    );
    let r = cardfree
        .get("robustness")
        .expect("robustness block present");
    assert_eq!(
        r.get("solve_degradation").and_then(|v| v.as_str()),
        Some("none")
    );
}
