//! Value-level tests for the `--router` flags and the always-present
//! `"router"` JSON block (the golden schema test only pins the keys).

use std::path::PathBuf;
use std::process::Command;

fn run(extra: &[&str]) -> ljqo_json::Value {
    let out = Command::new(env!("CARGO_BIN_EXE_ljqo-opt"))
        .arg("--json")
        .args(extra)
        .output()
        .expect("CLI binary runs");
    assert!(
        out.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    ljqo_json::parse(&String::from_utf8_lossy(&out.stdout)).expect("CLI emits valid JSON")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ljqo_router_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}_{}.state", tag, std::process::id()))
}

const STAR: &[&str] = &["--workload-shape", "star", "--workload-joins", "10"];

#[test]
fn router_block_is_present_but_disabled_by_default() {
    let out = run(STAR);
    let r = out.get("router").expect("router block present");
    assert_eq!(r.get("enabled").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(r.get("mode").and_then(|v| v.as_str()), Some("uniform"));
    assert_eq!(
        r.get("state_persisted").and_then(|v| v.as_bool()),
        Some(false)
    );
    let shares = r.get("shares").and_then(|v| v.as_array()).unwrap();
    assert_eq!(shares.len(), 4);
    for s in shares {
        assert_eq!(
            s.as_f64(),
            Some(0.25),
            "uniform mode reports the even split"
        );
    }
    let arms = r.get("arms").and_then(|v| v.as_array()).unwrap();
    assert_eq!(arms.len(), 4);
    let class = r.get("class").and_then(|v| v.as_str()).unwrap();
    assert!(
        class.starts_with("star/"),
        "a JOB star workload classifies as star, got {class:?}"
    );
}

#[test]
fn ucb_router_learns_and_persists_across_invocations() {
    let state = scratch("persists");
    std::fs::remove_file(&state).ok();
    let state_str = state.to_str().unwrap();
    let flags = [
        "--portfolio",
        "--workers",
        "4",
        "--router",
        "ucb",
        "--router-state",
        state_str,
    ];

    // First boot: fresh state (missing file is not a reset), and the
    // solve's own outcome is already recorded before the save.
    let first = run(&[STAR, &flags[..], &["--seed", "1"]].concat());
    let r = first.get("router").expect("router block present");
    assert_eq!(r.get("enabled").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(r.get("mode").and_then(|v| v.as_str()), Some("ucb"));
    assert_eq!(r.get("resets").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(
        r.get("state_persisted").and_then(|v| v.as_bool()),
        Some(true)
    );
    let eps = r.get("epsilon").and_then(|v| v.as_f64()).unwrap();
    assert!(eps > 0.0 && eps <= 0.25, "ε clamped to 1/K, got {eps}");
    let shares = r.get("shares").and_then(|v| v.as_array()).unwrap();
    let total: f64 = shares.iter().filter_map(|v| v.as_f64()).sum();
    assert!((total - 1.0).abs() < 1e-9, "shares sum to 1, got {total}");

    let text = std::fs::read_to_string(&state).expect("state file written after the solve");
    assert!(
        text.starts_with("ljqo-router v1"),
        "state file carries the versioned header"
    );

    // Second boot: the state loads cleanly — still zero resets.
    let second = run(&[STAR, &flags[..], &["--seed", "2"]].concat());
    let r = second.get("router").expect("router block present");
    assert_eq!(r.get("resets").and_then(|v| v.as_u64()), Some(0));

    // Corrupt the file: the third boot degrades to uniform and counts it.
    std::fs::write(&state, "not a router state").unwrap();
    let third = run(&[STAR, &flags[..], &["--seed", "3"]].concat());
    let r = third.get("router").expect("router block present");
    assert_eq!(r.get("resets").and_then(|v| v.as_u64()), Some(1));
    std::fs::remove_file(&state).ok();
}

#[test]
fn router_flag_misuse_is_a_usage_error() {
    // `--router ucb` without `--portfolio`, `--router-state` without
    // `--router ucb`, and an unknown router name: all exit 2.
    for (extra, needle) in [
        (vec!["--router", "ucb"], "--portfolio"),
        (vec!["--router-state", "/tmp/x.state"], "--router ucb"),
        (
            vec!["--portfolio", "--router", "thompson"],
            "unknown router",
        ),
        (
            vec!["--portfolio", "--router", "ucb", "--router-epsilon", "-1"],
            "--router-epsilon",
        ),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_ljqo-opt"))
            .args(STAR)
            .args(&extra)
            .output()
            .expect("CLI binary runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{extra:?} must be a usage error"
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(needle),
            "{extra:?}: stderr names the problem"
        );
    }
}
