//! Property tests for the join-graph structure, driven by arbitrary
//! random edge lists (not the workload generator, so disconnected and
//! degenerate graphs are covered too).

use proptest::prelude::*;

use ljqo_catalog::{JoinEdge, JoinGraph, RelId};

/// Strategy: a graph over `n` relations with arbitrary (possibly
/// parallel) edges.
fn arb_graph() -> impl Strategy<Value = JoinGraph> {
    (2usize..12).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1.0f64..100.0, 1.0f64..100.0).prop_filter_map(
            "no self loops",
            |(a, b, da, db)| (a != b).then(|| JoinEdge::from_distincts(a, b, da, db)),
        );
        prop::collection::vec(edge, 0..20)
            .prop_map(move |edges| JoinGraph::new(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Components partition the relation set.
    #[test]
    fn components_partition_relations(g in arb_graph()) {
        let comps = g.components();
        let mut seen = vec![false; g.n_relations()];
        for comp in &comps {
            prop_assert!(!comp.is_empty());
            for r in comp {
                prop_assert!(!seen[r.index()], "{r} in two components");
                seen[r.index()] = true;
            }
            // Sorted within a component.
            prop_assert!(comp.windows(2).all(|w| w[0] < w[1]));
        }
        prop_assert!(seen.into_iter().all(|s| s));
        prop_assert_eq!(g.is_connected(), comps.len() <= 1);
    }

    /// Degree equals the number of distinct neighbors, and neighborhood is
    /// symmetric.
    #[test]
    fn degree_matches_neighbors(g in arb_graph()) {
        for r in 0..g.n_relations() {
            let r = RelId(r as u32);
            let neighbors = g.neighbors(r);
            prop_assert_eq!(g.degree(r), neighbors.len());
            for &o in &neighbors {
                prop_assert!(g.neighbors(o).contains(&r), "asymmetric adjacency");
                prop_assert!(g.joined(r, o) && g.joined(o, r));
            }
        }
    }

    /// Combined selectivity between a pair is symmetric and within (0, 1].
    #[test]
    fn selectivity_between_is_symmetric(g in arb_graph()) {
        for a in 0..g.n_relations() {
            for b in 0..g.n_relations() {
                let (a, b) = (RelId(a as u32), RelId(b as u32));
                let ab = g.selectivity_between(a, b);
                let ba = g.selectivity_between(b, a);
                match (ab, ba) {
                    (Some(x), Some(y)) => {
                        prop_assert!((x - y).abs() < 1e-15);
                        prop_assert!(x > 0.0 && x <= 1.0);
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "asymmetric selectivity_between"),
                }
            }
        }
    }

    /// A BFS spanning tree covers exactly the root's component, with
    /// parent pointers that walk back to the root.
    #[test]
    fn bfs_tree_covers_component(g in arb_graph(), root_pick in any::<prop::sample::Index>()) {
        let comps = g.components();
        let comp = &comps[root_pick.index(comps.len())];
        let root = comp[0];
        let tree = g.bfs_spanning_tree(root);
        prop_assert_eq!(tree.members.len(), comp.len());
        for &m in &tree.members {
            prop_assert!(comp.contains(&m));
            // Walk to the root in at most n steps.
            let mut cur = m;
            let mut steps = 0;
            while let Some((p, e)) = tree.parent[cur.index()] {
                prop_assert!(g.edge(e).touches(cur) && g.edge(e).touches(p));
                cur = p;
                steps += 1;
                prop_assert!(steps <= g.n_relations(), "parent cycle");
            }
            prop_assert_eq!(cur, root);
        }
    }
}
