//! Property tests for the join-graph structure, driven by arbitrary
//! random edge lists (not the workload generator, so disconnected and
//! degenerate graphs are covered too). Implemented as seeded-RNG loops:
//! the build is offline, so no proptest — every case is reproducible
//! from its printed seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_catalog::{JoinEdge, JoinGraph, RelId};

const CASES: u64 = 64;

/// A graph over 2..12 relations with arbitrary (possibly parallel) edges.
fn arb_graph(rng: &mut SmallRng) -> JoinGraph {
    let n = rng.gen_range(2usize..12);
    let n_edges = rng.gen_range(0usize..20);
    let mut edges = Vec::with_capacity(n_edges);
    while edges.len() < n_edges {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue; // no self loops
        }
        let da = rng.gen_range(1.0f64..100.0);
        let db = rng.gen_range(1.0f64..100.0);
        edges.push(JoinEdge::from_distincts(a, b, da, db));
    }
    JoinGraph::new(n, edges)
}

/// Components partition the relation set.
#[test]
fn components_partition_relations() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_0001 ^ case);
        let g = arb_graph(&mut rng);
        let comps = g.components();
        let mut seen = vec![false; g.n_relations()];
        for comp in &comps {
            assert!(!comp.is_empty(), "case {case}: empty component");
            for r in comp {
                assert!(!seen[r.index()], "case {case}: {r} in two components");
                seen[r.index()] = true;
            }
            // Sorted within a component.
            assert!(comp.windows(2).all(|w| w[0] < w[1]), "case {case}");
        }
        assert!(seen.into_iter().all(|s| s), "case {case}: relation missed");
        assert_eq!(g.is_connected(), comps.len() <= 1, "case {case}");
    }
}

/// Degree equals the number of distinct neighbors, and neighborhood is
/// symmetric.
#[test]
fn degree_matches_neighbors() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_0002 ^ case);
        let g = arb_graph(&mut rng);
        for r in 0..g.n_relations() {
            let r = RelId(r as u32);
            let neighbors = g.neighbors(r);
            assert_eq!(g.degree(r), neighbors.len(), "case {case}");
            for &o in neighbors {
                assert!(
                    g.neighbors(o).contains(&r),
                    "case {case}: asymmetric adjacency"
                );
                assert!(g.joined(r, o) && g.joined(o, r), "case {case}");
            }
        }
    }
}

/// Combined selectivity between a pair is symmetric and within (0, 1].
#[test]
fn selectivity_between_is_symmetric() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_0003 ^ case);
        let g = arb_graph(&mut rng);
        for a in 0..g.n_relations() {
            for b in 0..g.n_relations() {
                let (a, b) = (RelId(a as u32), RelId(b as u32));
                let ab = g.selectivity_between(a, b);
                let ba = g.selectivity_between(b, a);
                match (ab, ba) {
                    (Some(x), Some(y)) => {
                        assert!((x - y).abs() < 1e-15, "case {case}");
                        assert!(x > 0.0 && x <= 1.0, "case {case}");
                    }
                    (None, None) => {}
                    _ => panic!("case {case}: asymmetric selectivity_between"),
                }
            }
        }
    }
}

/// A BFS spanning tree covers exactly the root's component, with
/// parent pointers that walk back to the root.
#[test]
fn bfs_tree_covers_component() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_0004 ^ case);
        let g = arb_graph(&mut rng);
        let comps = g.components();
        let comp = &comps[rng.gen_range(0..comps.len())];
        let root = comp[0];
        let tree = g.bfs_spanning_tree(root);
        assert_eq!(tree.members.len(), comp.len(), "case {case}");
        for &m in &tree.members {
            assert!(comp.contains(&m), "case {case}");
            // Walk to the root in at most n steps.
            let mut cur = m;
            let mut steps = 0;
            while let Some((p, e)) = tree.parent[cur.index()] {
                assert!(
                    g.edge(e).touches(cur) && g.edge(e).touches(p),
                    "case {case}"
                );
                cur = p;
                steps += 1;
                assert!(steps <= g.n_relations(), "case {case}: parent cycle");
            }
            assert_eq!(cur, root, "case {case}");
        }
    }
}
