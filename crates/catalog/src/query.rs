//! A validated query: relations plus join graph.

use std::fmt;

use crate::graph::JoinGraph;
use crate::predicate::JoinEdge;
use crate::relation::{RelId, Relation};

/// Errors detected when validating a [`Query`].
///
/// Every invalid catalog must surface as one of these — never as a panic
/// deep in the optimizer. The optimizer's cost arithmetic assumes all
/// statistics are finite and positive; this taxonomy is the gate that
/// makes that assumption safe.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// The query has no relations.
    Empty,
    /// A selectivity was outside `(0, 1]` (NaN fails this check too).
    BadSelectivity {
        /// Description of where the bad value was found.
        context: String,
        /// The offending value.
        value: f64,
    },
    /// A relation has zero base cardinality.
    ZeroCardinality(RelId),
    /// A statistic that must be a finite number was NaN or infinite.
    NonFinite {
        /// Description of where the bad value was found.
        context: String,
        /// The offending value.
        value: f64,
    },
    /// A join column claims more distinct values than the relation has
    /// tuples.
    DistinctExceedsCardinality {
        /// The relation whose side of the edge is inconsistent.
        rel: RelId,
        /// Claimed distinct count.
        distinct: f64,
        /// The relation's effective cardinality.
        cardinality: f64,
    },
    /// A join edge references a relation id outside the query.
    DanglingEdge {
        /// One endpoint.
        a: RelId,
        /// The other endpoint.
        b: RelId,
        /// Number of relations in the query.
        n_relations: usize,
    },
    /// A join edge connects a relation to itself.
    SelfJoin(RelId),
    /// A builder call referenced a relation name that was never added.
    UnknownRelation(String),
    /// A builder call needed a most-recent relation but none was added yet.
    SelectionBeforeRelation,
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Empty => write!(f, "query has no relations"),
            CatalogError::BadSelectivity { context, value } => {
                write!(f, "selectivity {value} out of (0,1] in {context}")
            }
            CatalogError::ZeroCardinality(r) => {
                write!(f, "relation {r} has zero cardinality")
            }
            CatalogError::NonFinite { context, value } => {
                write!(f, "non-finite value {value} in {context}")
            }
            CatalogError::DistinctExceedsCardinality {
                rel,
                distinct,
                cardinality,
            } => write!(
                f,
                "join column on {rel} claims {distinct} distinct values but \
                 the relation holds only {cardinality} tuples"
            ),
            CatalogError::DanglingEdge { a, b, n_relations } => write!(
                f,
                "join edge {a}-{b} references a relation outside 0..{n_relations}"
            ),
            CatalogError::SelfJoin(r) => write!(f, "join edge connects {r} to itself"),
            CatalogError::UnknownRelation(name) => {
                write!(f, "unknown relation {name:?} in QueryBuilder")
            }
            CatalogError::SelectionBeforeRelation => {
                write!(
                    f,
                    "add_selection_to_last called before any relation was added"
                )
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// A select-project-join query: the unit of work for the optimizer.
///
/// `N` in the paper is the number of joins; the number of joining relations
/// is `N + 1`. The join graph may contain more than `N` edges (extra join
/// predicates) and may be disconnected (requiring cross products).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    relations: Vec<Relation>,
    graph: JoinGraph,
}

/// Validate relations and edges without constructing a query. This is the
/// single gate the optimizer relies on: once it passes, every statistic is
/// finite, every selectivity is in `(0, 1]`, every edge endpoint resolves,
/// and no join column claims more distinct values than its relation holds.
fn validate_parts(relations: &[Relation], edges: &[JoinEdge]) -> Result<(), CatalogError> {
    if relations.is_empty() {
        return Err(CatalogError::Empty);
    }
    for (i, r) in relations.iter().enumerate() {
        if r.base_cardinality == 0 {
            return Err(CatalogError::ZeroCardinality(RelId(i as u32)));
        }
        for s in &r.selections {
            if !(s.selectivity > 0.0 && s.selectivity <= 1.0) {
                return Err(CatalogError::BadSelectivity {
                    context: format!("selection on relation {}", r.name),
                    value: s.selectivity,
                });
            }
        }
        // Selections in (0, 1] keep the effective cardinality finite, but
        // check anyway: it is the value every size estimate multiplies.
        let card = r.cardinality();
        if !card.is_finite() || card <= 0.0 {
            return Err(CatalogError::NonFinite {
                context: format!("effective cardinality of relation {}", r.name),
                value: card,
            });
        }
    }
    for e in edges {
        if e.a.index() >= relations.len() || e.b.index() >= relations.len() {
            return Err(CatalogError::DanglingEdge {
                a: e.a,
                b: e.b,
                n_relations: relations.len(),
            });
        }
        if e.a == e.b {
            return Err(CatalogError::SelfJoin(e.a));
        }
        if !(e.selectivity > 0.0 && e.selectivity <= 1.0) {
            return Err(CatalogError::BadSelectivity {
                context: format!("join edge {}-{}", e.a, e.b),
                value: e.selectivity,
            });
        }
        for (rel, distinct) in [(e.a, e.distinct_a), (e.b, e.distinct_b)] {
            if !distinct.is_finite() || distinct < 1.0 {
                return Err(CatalogError::NonFinite {
                    context: format!("distinct count on {rel} of edge {}-{}", e.a, e.b),
                    value: distinct,
                });
            }
            // Distinct counts describe the stored join column, so the
            // bound is the base cardinality: selections shrink the rows
            // scanned, not the column statistics.
            let cardinality = relations[rel.index()].base_cardinality as f64;
            if distinct > cardinality * (1.0 + 1e-9) {
                return Err(CatalogError::DistinctExceedsCardinality {
                    rel,
                    distinct,
                    cardinality,
                });
            }
        }
    }
    Ok(())
}

impl Query {
    /// Build and validate a query.
    pub fn new(relations: Vec<Relation>, edges: Vec<JoinEdge>) -> Result<Self, CatalogError> {
        validate_parts(&relations, &edges)?;
        let graph = JoinGraph::new(relations.len(), edges);
        Ok(Query { relations, graph })
    }

    /// Re-run the full validation pass on an existing query.
    ///
    /// `Query::new` already validates, so this only fails if statistics
    /// were mutated afterwards (e.g. through a deserialized or hand-built
    /// catalog). The optimizer driver runs it once per `optimize` call as
    /// a cheap precondition check.
    pub fn validate(&self) -> Result<(), CatalogError> {
        validate_parts(&self.relations, self.graph.edges())
    }

    /// Number of relations (`N + 1` in the paper's notation).
    #[inline]
    pub fn n_relations(&self) -> usize {
        self.relations.len()
    }

    /// The paper's `N`: the number of joins needed to combine all
    /// relations, i.e. `n_relations - 1`.
    #[inline]
    pub fn n_joins(&self) -> usize {
        self.n_relations().saturating_sub(1)
    }

    /// All relations, indexed by [`RelId`].
    #[inline]
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// The relation with the given id.
    #[inline]
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Effective cardinality `N_k` of relation `id`.
    #[inline]
    pub fn cardinality(&self, id: RelId) -> f64 {
        self.relations[id.index()].cardinality()
    }

    /// The join graph.
    #[inline]
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }

    /// Iterator over all relation ids.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len() as u32).map(RelId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rels(n: usize) -> Vec<Relation> {
        (0..n)
            .map(|i| Relation::new(format!("r{i}"), 100))
            .collect()
    }

    #[test]
    fn valid_query_builds() {
        let q = Query::new(
            rels(3),
            vec![
                JoinEdge::from_distincts(0u32, 1u32, 10.0, 10.0),
                JoinEdge::from_distincts(1u32, 2u32, 10.0, 10.0),
            ],
        )
        .unwrap();
        assert_eq!(q.n_relations(), 3);
        assert_eq!(q.n_joins(), 2);
        assert_eq!(q.cardinality(RelId(0)), 100.0);
        assert_eq!(q.rel_ids().count(), 3);
    }

    #[test]
    fn empty_query_rejected() {
        assert_eq!(Query::new(vec![], vec![]).unwrap_err(), CatalogError::Empty);
    }

    #[test]
    fn zero_cardinality_rejected() {
        let mut rs = rels(2);
        rs[1].base_cardinality = 0;
        let err = Query::new(rs, vec![]).unwrap_err();
        assert_eq!(err, CatalogError::ZeroCardinality(RelId(1)));
    }

    #[test]
    fn bad_join_selectivity_rejected() {
        let err = Query::new(rels(2), vec![JoinEdge::new(0u32, 1u32, 1.0, 1.0, 1.0)]);
        assert!(err.is_ok());
        // Constructing a JoinEdge with bad selectivity panics in debug, so
        // exercise validation through a manually tweaked edge.
        let mut e = JoinEdge::new(0u32, 1u32, 0.5, 1.0, 1.0);
        e.selectivity = 1.5;
        let err = Query::new(rels(2), vec![e]).unwrap_err();
        assert!(matches!(err, CatalogError::BadSelectivity { .. }));
    }

    #[test]
    fn bad_selection_selectivity_rejected() {
        let mut rs = rels(1);
        rs[0].selections.push(crate::Selection { selectivity: 0.0 });
        let err = Query::new(rs, vec![]).unwrap_err();
        assert!(matches!(err, CatalogError::BadSelectivity { .. }));
    }

    #[test]
    fn single_relation_query_has_zero_joins() {
        let q = Query::new(rels(1), vec![]).unwrap();
        assert_eq!(q.n_joins(), 0);
    }

    #[test]
    fn nan_selection_rejected_not_panicking() {
        let mut rs = rels(1);
        rs[0].selections.push(crate::Selection {
            selectivity: f64::NAN,
        });
        let err = Query::new(rs, vec![]).unwrap_err();
        assert!(matches!(err, CatalogError::BadSelectivity { .. }));
    }

    #[test]
    fn nan_distinct_rejected() {
        let e = JoinEdge::new(0u32, 1u32, 0.5, f64::NAN, 4.0);
        let err = Query::new(rels(2), vec![e]).unwrap_err();
        assert!(matches!(err, CatalogError::NonFinite { .. }));
    }

    #[test]
    fn infinite_distinct_rejected() {
        let e = JoinEdge::new(0u32, 1u32, 0.5, f64::INFINITY, 4.0);
        let err = Query::new(rels(2), vec![e]).unwrap_err();
        assert!(matches!(err, CatalogError::NonFinite { .. }));
    }

    #[test]
    fn distinct_beyond_cardinality_rejected() {
        // rels() gives 100-tuple relations; claim 5000 distinct values.
        let e = JoinEdge::new(0u32, 1u32, 0.5, 5000.0, 4.0);
        let err = Query::new(rels(2), vec![e]).unwrap_err();
        assert_eq!(
            err,
            CatalogError::DistinctExceedsCardinality {
                rel: RelId(0),
                distinct: 5000.0,
                cardinality: 100.0,
            }
        );
    }

    #[test]
    fn dangling_edge_rejected_not_panicking() {
        let e = JoinEdge::new(0u32, 9u32, 0.5, 4.0, 4.0);
        let err = Query::new(rels(2), vec![e]).unwrap_err();
        assert_eq!(
            err,
            CatalogError::DanglingEdge {
                a: RelId(0),
                b: RelId(9),
                n_relations: 2,
            }
        );
    }

    #[test]
    fn self_join_rejected_not_panicking() {
        let e = JoinEdge::new(1u32, 1u32, 0.5, 4.0, 4.0);
        let err = Query::new(rels(2), vec![e]).unwrap_err();
        assert_eq!(err, CatalogError::SelfJoin(RelId(1)));
    }

    #[test]
    fn validate_rechecks_existing_query() {
        let q = Query::new(
            rels(2),
            vec![JoinEdge::from_distincts(0u32, 1u32, 10.0, 10.0)],
        )
        .unwrap();
        assert_eq!(q.validate(), Ok(()));
    }
}
