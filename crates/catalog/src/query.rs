//! A validated query: relations plus join graph.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::graph::JoinGraph;
use crate::predicate::JoinEdge;
use crate::relation::{RelId, Relation};

/// Errors detected when validating a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// The query has no relations.
    Empty,
    /// A selectivity was outside `(0, 1]`.
    BadSelectivity {
        /// Description of where the bad value was found.
        context: String,
        /// The offending value.
        value: f64,
    },
    /// A relation has zero base cardinality.
    ZeroCardinality(RelId),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Empty => write!(f, "query has no relations"),
            CatalogError::BadSelectivity { context, value } => {
                write!(f, "selectivity {value} out of (0,1] in {context}")
            }
            CatalogError::ZeroCardinality(r) => {
                write!(f, "relation {r} has zero cardinality")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// A select-project-join query: the unit of work for the optimizer.
///
/// `N` in the paper is the number of joins; the number of joining relations
/// is `N + 1`. The join graph may contain more than `N` edges (extra join
/// predicates) and may be disconnected (requiring cross products).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    relations: Vec<Relation>,
    graph: JoinGraph,
}

impl Query {
    /// Build and validate a query.
    pub fn new(relations: Vec<Relation>, edges: Vec<JoinEdge>) -> Result<Self, CatalogError> {
        if relations.is_empty() {
            return Err(CatalogError::Empty);
        }
        for (i, r) in relations.iter().enumerate() {
            if r.base_cardinality == 0 {
                return Err(CatalogError::ZeroCardinality(RelId(i as u32)));
            }
            for s in &r.selections {
                if !(s.selectivity > 0.0 && s.selectivity <= 1.0) {
                    return Err(CatalogError::BadSelectivity {
                        context: format!("selection on relation {}", r.name),
                        value: s.selectivity,
                    });
                }
            }
        }
        for e in &edges {
            if !(e.selectivity > 0.0 && e.selectivity <= 1.0) {
                return Err(CatalogError::BadSelectivity {
                    context: format!("join edge {}-{}", e.a, e.b),
                    value: e.selectivity,
                });
            }
        }
        let graph = JoinGraph::new(relations.len(), edges);
        Ok(Query { relations, graph })
    }

    /// Number of relations (`N + 1` in the paper's notation).
    #[inline]
    pub fn n_relations(&self) -> usize {
        self.relations.len()
    }

    /// The paper's `N`: the number of joins needed to combine all
    /// relations, i.e. `n_relations - 1`.
    #[inline]
    pub fn n_joins(&self) -> usize {
        self.n_relations().saturating_sub(1)
    }

    /// All relations, indexed by [`RelId`].
    #[inline]
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// The relation with the given id.
    #[inline]
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Effective cardinality `N_k` of relation `id`.
    #[inline]
    pub fn cardinality(&self, id: RelId) -> f64 {
        self.relations[id.index()].cardinality()
    }

    /// The join graph.
    #[inline]
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }

    /// Iterator over all relation ids.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len() as u32).map(RelId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rels(n: usize) -> Vec<Relation> {
        (0..n).map(|i| Relation::new(format!("r{i}"), 100)).collect()
    }

    #[test]
    fn valid_query_builds() {
        let q = Query::new(
            rels(3),
            vec![
                JoinEdge::from_distincts(0u32, 1u32, 10.0, 10.0),
                JoinEdge::from_distincts(1u32, 2u32, 10.0, 10.0),
            ],
        )
        .unwrap();
        assert_eq!(q.n_relations(), 3);
        assert_eq!(q.n_joins(), 2);
        assert_eq!(q.cardinality(RelId(0)), 100.0);
        assert_eq!(q.rel_ids().count(), 3);
    }

    #[test]
    fn empty_query_rejected() {
        assert_eq!(Query::new(vec![], vec![]).unwrap_err(), CatalogError::Empty);
    }

    #[test]
    fn zero_cardinality_rejected() {
        let mut rs = rels(2);
        rs[1].base_cardinality = 0;
        let err = Query::new(rs, vec![]).unwrap_err();
        assert_eq!(err, CatalogError::ZeroCardinality(RelId(1)));
    }

    #[test]
    fn bad_join_selectivity_rejected() {
        let err = Query::new(rels(2), vec![JoinEdge::new(0u32, 1u32, 1.0, 1.0, 1.0)]);
        assert!(err.is_ok());
        // Constructing a JoinEdge with bad selectivity panics in debug, so
        // exercise validation through a manually tweaked edge.
        let mut e = JoinEdge::new(0u32, 1u32, 0.5, 1.0, 1.0);
        e.selectivity = 1.5;
        let err = Query::new(rels(2), vec![e]).unwrap_err();
        assert!(matches!(err, CatalogError::BadSelectivity { .. }));
    }

    #[test]
    fn bad_selection_selectivity_rejected() {
        let mut rs = rels(1);
        rs[0].selections.push(crate::Selection { selectivity: 0.0 });
        let err = Query::new(rs, vec![]).unwrap_err();
        assert!(matches!(err, CatalogError::BadSelectivity { .. }));
    }

    #[test]
    fn single_relation_query_has_zero_joins() {
        let q = Query::new(rels(1), vec![]).unwrap();
        assert_eq!(q.n_joins(), 0);
    }
}
