//! The join graph: an undirected multigraph of join predicates.

use crate::predicate::JoinEdge;
use crate::relation::RelId;

/// Identifier of an edge within a [`JoinGraph`] (index into the edge list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Undirected multigraph over the relations of a query.
///
/// Stores the edge list plus a per-relation adjacency index so that the hot
/// optimizer loops (validity checks, frontier scans) run without hashing.
/// Parallel edges (several join predicates between the same pair) are
/// allowed; the estimator multiplies their selectivities.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinGraph {
    n_relations: usize,
    edges: Vec<JoinEdge>,
    /// `adjacency[r]` lists the ids of edges incident to relation `r`.
    adjacency: Vec<Vec<EdgeId>>,
    /// CSR offsets into `neighbor_list`: the distinct neighbors of `r` are
    /// `neighbor_list[neighbor_offsets[r] .. neighbor_offsets[r + 1]]`.
    neighbor_offsets: Vec<u32>,
    /// Distinct neighbors of each relation, sorted, deduplicated across
    /// parallel edges.
    neighbor_list: Vec<RelId>,
}

impl JoinGraph {
    /// Build a graph over `n_relations` relations from an edge list.
    ///
    /// Panics if an edge references a relation `>= n_relations` or is a
    /// self-loop.
    pub fn new(n_relations: usize, edges: Vec<JoinEdge>) -> Self {
        let mut adjacency = vec![Vec::new(); n_relations];
        for (i, e) in edges.iter().enumerate() {
            assert!(
                e.a.index() < n_relations && e.b.index() < n_relations,
                "edge {}-{} references a relation outside 0..{n_relations}",
                e.a,
                e.b
            );
            assert!(e.a != e.b, "self-loop on {}", e.a);
            let id = EdgeId(i as u32);
            adjacency[e.a.index()].push(id);
            adjacency[e.b.index()].push(id);
        }
        // Precompute the sorted distinct-neighbor lists once, in CSR form,
        // so `neighbors()` and `degree()` are O(1) lookups instead of
        // per-call collect + sort + dedup allocations.
        let mut neighbor_offsets = Vec::with_capacity(n_relations + 1);
        let mut neighbor_list = Vec::with_capacity(2 * edges.len());
        let mut scratch: Vec<RelId> = Vec::new();
        for (r, incident) in adjacency.iter().enumerate() {
            neighbor_offsets.push(neighbor_list.len() as u32);
            let rel = RelId(r as u32);
            scratch.clear();
            scratch.extend(
                incident
                    .iter()
                    .filter_map(|&eid| edges[eid.index()].other(rel)),
            );
            scratch.sort_unstable();
            scratch.dedup();
            neighbor_list.extend_from_slice(&scratch);
        }
        neighbor_offsets.push(neighbor_list.len() as u32);
        JoinGraph {
            n_relations,
            edges,
            adjacency,
            neighbor_offsets,
            neighbor_list,
        }
    }

    /// Number of relations (nodes).
    #[inline]
    pub fn n_relations(&self) -> usize {
        self.n_relations
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &JoinEdge {
        &self.edges[id.index()]
    }

    /// Ids of edges incident to `rel`.
    #[inline]
    pub fn incident(&self, rel: RelId) -> &[EdgeId] {
        &self.adjacency[rel.index()]
    }

    /// Degree of `rel` in the join graph (`deg(k)` in the paper): the
    /// number of *distinct* relations it joins with. O(1) — precomputed at
    /// construction.
    #[inline]
    pub fn degree(&self, rel: RelId) -> usize {
        self.neighbors(rel).len()
    }

    /// The distinct neighbor relations of `rel`, sorted by id. O(1) — a
    /// slice into the CSR neighbor index precomputed at construction.
    #[inline]
    pub fn neighbors(&self, rel: RelId) -> &[RelId] {
        let r = rel.index();
        let lo = self.neighbor_offsets[r] as usize;
        let hi = self.neighbor_offsets[r + 1] as usize;
        &self.neighbor_list[lo..hi]
    }

    /// Product of the selectivities of all edges between `a` and `b`, or
    /// `None` if they share no join predicate.
    pub fn selectivity_between(&self, a: RelId, b: RelId) -> Option<f64> {
        let mut sel: Option<f64> = None;
        for &eid in self.incident(a) {
            let e = self.edge(eid);
            if e.other(a) == Some(b) {
                *sel.get_or_insert(1.0) *= e.selectivity;
            }
        }
        sel
    }

    /// Whether any join predicate links `a` and `b`.
    pub fn joined(&self, a: RelId, b: RelId) -> bool {
        self.incident(a)
            .iter()
            .any(|&eid| self.edge(eid).other(a) == Some(b))
    }

    /// Connected components, each a sorted list of relation ids. Components
    /// are returned in order of their smallest member. Isolated relations
    /// form singleton components (they can only be combined by cross
    /// products).
    pub fn components(&self) -> Vec<Vec<RelId>> {
        let mut comp = vec![usize::MAX; self.n_relations];
        let mut next = 0usize;
        let mut stack = Vec::new();
        for start in 0..self.n_relations {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(RelId(start as u32));
            while let Some(r) = stack.pop() {
                for &eid in self.incident(r) {
                    if let Some(o) = self.edge(eid).other(r) {
                        if comp[o.index()] == usize::MAX {
                            comp[o.index()] = next;
                            stack.push(o);
                        }
                    }
                }
            }
            next += 1;
        }
        let mut out = vec![Vec::new(); next];
        for (i, &c) in comp.iter().enumerate() {
            out[c].push(RelId(i as u32));
        }
        out
    }

    /// Whether the graph is connected (a single component covering every
    /// relation). The empty graph over one relation counts as connected.
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// A breadth-first spanning tree of the component containing `root`.
    pub fn bfs_spanning_tree(&self, root: RelId) -> SpanningTree {
        let mut parent = vec![None; self.n_relations];
        let mut in_tree = vec![false; self.n_relations];
        in_tree[root.index()] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        let mut members = vec![root];
        while let Some(r) = queue.pop_front() {
            for &eid in self.incident(r) {
                if let Some(o) = self.edge(eid).other(r) {
                    if !in_tree[o.index()] {
                        in_tree[o.index()] = true;
                        parent[o.index()] = Some((r, eid));
                        members.push(o);
                        queue.push_back(o);
                    }
                }
            }
        }
        SpanningTree::new(root, parent, members)
    }
}

/// A rooted spanning tree of (one component of) a join graph.
///
/// `parent[r]` is `Some((p, e))` when relation `r` was reached from `p` via
/// edge `e`; the root and relations outside the component have `None`.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    /// The root relation.
    pub root: RelId,
    /// Parent pointer and connecting edge for each relation, indexed by
    /// relation id.
    pub parent: Vec<Option<(RelId, EdgeId)>>,
    /// Relations in the tree, in discovery order (root first).
    pub members: Vec<RelId>,
    /// CSR offsets into `child_list`: the children of `r` are
    /// `child_list[child_offsets[r] .. child_offsets[r + 1]]`.
    child_offsets: Vec<u32>,
    /// Children of each relation, in discovery order.
    child_list: Vec<RelId>,
}

impl SpanningTree {
    fn new(root: RelId, parent: Vec<Option<(RelId, EdgeId)>>, members: Vec<RelId>) -> Self {
        // Bucket the members (minus the root) under their parents with a
        // counting sort, preserving discovery order within each bucket —
        // the same order the old filter-over-members scan produced.
        let n = parent.len();
        let mut counts = vec![0u32; n + 1];
        for m in &members {
            if let Some((p, _)) = parent[m.index()] {
                counts[p.index() + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let child_offsets = counts.clone();
        let mut cursor = counts;
        let mut child_list = vec![root; members.len().saturating_sub(1)];
        for &m in &members {
            if let Some((p, _)) = parent[m.index()] {
                child_list[cursor[p.index()] as usize] = m;
                cursor[p.index()] += 1;
            }
        }
        SpanningTree {
            root,
            parent,
            members,
            child_offsets,
            child_list,
        }
    }

    /// Children of `rel` in the tree, in discovery order. O(1) — a slice
    /// into a child index precomputed at construction.
    #[inline]
    pub fn children(&self, rel: RelId) -> &[RelId] {
        let r = rel.index();
        let lo = self.child_offsets[r] as usize;
        let hi = self.child_offsets[r + 1] as usize;
        &self.child_list[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> JoinGraph {
        let edges = (1..n)
            .map(|i| JoinEdge::from_distincts(i - 1, i, 10.0, 10.0))
            .collect();
        JoinGraph::new(n, edges)
    }

    #[test]
    fn chain_degrees_and_neighbors() {
        let g = chain(4);
        assert_eq!(g.degree(RelId(0)), 1);
        assert_eq!(g.degree(RelId(1)), 2);
        assert_eq!(g.neighbors(RelId(1)), vec![RelId(0), RelId(2)]);
        assert!(g.joined(RelId(2), RelId(3)));
        assert!(!g.joined(RelId(0), RelId(3)));
    }

    #[test]
    fn parallel_edges_multiply_selectivity() {
        let edges = vec![
            JoinEdge::new(0u32, 1u32, 0.1, 10.0, 10.0),
            JoinEdge::new(0u32, 1u32, 0.5, 10.0, 10.0),
        ];
        let g = JoinGraph::new(2, edges);
        let s = g.selectivity_between(RelId(0), RelId(1)).unwrap();
        assert!((s - 0.05).abs() < 1e-12);
        // Degree counts distinct neighbors, not edges.
        assert_eq!(g.degree(RelId(0)), 1);
    }

    #[test]
    fn selectivity_between_unjoined_is_none() {
        let g = chain(3);
        assert_eq!(g.selectivity_between(RelId(0), RelId(2)), None);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let edges = vec![
            JoinEdge::from_distincts(0u32, 1u32, 5.0, 5.0),
            JoinEdge::from_distincts(3u32, 4u32, 5.0, 5.0),
        ];
        let g = JoinGraph::new(5, edges);
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![RelId(0), RelId(1)]);
        assert_eq!(comps[1], vec![RelId(2)]);
        assert_eq!(comps[2], vec![RelId(3), RelId(4)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn chain_is_connected() {
        assert!(chain(6).is_connected());
    }

    #[test]
    fn bfs_spanning_tree_covers_component() {
        let g = chain(5);
        let t = g.bfs_spanning_tree(RelId(2));
        assert_eq!(t.members.len(), 5);
        assert_eq!(t.root, RelId(2));
        assert_eq!(t.parent[2], None);
        // Parent chain from 0 leads to the root.
        assert_eq!(t.parent[0].map(|(p, _)| p), Some(RelId(1)));
        assert_eq!(t.parent[1].map(|(p, _)| p), Some(RelId(2)));
        assert_eq!(t.children(RelId(2)), vec![RelId(1), RelId(3)]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        JoinGraph::new(2, vec![JoinEdge::from_distincts(0u32, 5u32, 2.0, 2.0)]);
    }
}
