//! Selection and join predicates.

use crate::relation::RelId;

/// A local selection predicate on one relation.
///
/// Only the selectivity matters for join ordering; the paper draws
/// selectivities from a fixed list (see `ljqo-workload`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// Fraction of tuples that satisfy the predicate, in `(0, 1]`.
    pub selectivity: f64,
}

impl Selection {
    /// Create a selection. Out-of-range values are accepted here and
    /// rejected by `Query::new` validation — constructors stay panic-free
    /// so untrusted catalogs fail with a typed `CatalogError`.
    pub fn new(selectivity: f64) -> Self {
        Selection { selectivity }
    }
}

/// A join predicate (edge in the join graph) between two relations.
///
/// Carries the statistics the paper's heuristics consume:
///
/// * `selectivity` — the join selectivity `J_kl`, i.e.
///   `|R_k ⋈ R_l| = N_k · N_l · J_kl`;
/// * `distinct_a` / `distinct_b` — the number of distinct values `D` in the
///   join column on each side (used by the rank criterion and by KBZ).
///
/// Under the classical uniformity assumption `J_kl = 1 / max(D_a, D_b)`;
/// [`JoinEdge::from_distincts`] constructs edges that way, but callers may
/// also set an explicit selectivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinEdge {
    /// One endpoint.
    pub a: RelId,
    /// The other endpoint.
    pub b: RelId,
    /// Join selectivity `J_ab` in `(0, 1]`.
    pub selectivity: f64,
    /// Distinct values in the join column of `a`.
    pub distinct_a: f64,
    /// Distinct values in the join column of `b`.
    pub distinct_b: f64,
}

impl JoinEdge {
    /// Create an edge with an explicit selectivity and distinct counts.
    ///
    /// Invalid statistics (selectivity outside `(0, 1]`, self-loop) are
    /// accepted here and rejected by `Query::new` validation — constructors
    /// stay panic-free so untrusted catalogs fail with a typed
    /// `CatalogError`. Distinct counts are floored at 1 (NaN stays NaN and
    /// is caught by validation).
    pub fn new(
        a: impl Into<RelId>,
        b: impl Into<RelId>,
        selectivity: f64,
        distinct_a: f64,
        distinct_b: f64,
    ) -> Self {
        // `d < 1.0` is false for NaN, so NaN passes through to validation
        // instead of being silently rewritten to a plausible value.
        let floor = |d: f64| if d < 1.0 { 1.0 } else { d };
        JoinEdge {
            a: a.into(),
            b: b.into(),
            selectivity,
            distinct_a: floor(distinct_a),
            distinct_b: floor(distinct_b),
        }
    }

    /// Create an edge whose selectivity follows the uniformity assumption
    /// `J = 1 / max(D_a, D_b)`.
    pub fn from_distincts(
        a: impl Into<RelId>,
        b: impl Into<RelId>,
        distinct_a: f64,
        distinct_b: f64,
    ) -> Self {
        let floor = |d: f64| if d < 1.0 { 1.0 } else { d };
        let (da, db) = (floor(distinct_a), floor(distinct_b));
        let sel = 1.0 / da.max(db);
        JoinEdge::new(a, b, sel, da, db)
    }

    /// The endpoint other than `rel`; `None` if `rel` is not an endpoint.
    pub fn other(&self, rel: RelId) -> Option<RelId> {
        if rel == self.a {
            Some(self.b)
        } else if rel == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Whether `rel` is one of the endpoints.
    pub fn touches(&self, rel: RelId) -> bool {
        rel == self.a || rel == self.b
    }

    /// Distinct count on the side of `rel`; `None` if `rel` is not an
    /// endpoint (callers iterating incident edges can safely
    /// `unwrap_or(1.0)`).
    pub fn distinct_on(&self, rel: RelId) -> Option<f64> {
        if rel == self.a {
            Some(self.distinct_a)
        } else if rel == self.b {
            Some(self.distinct_b)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_distincts_uses_uniformity() {
        let e = JoinEdge::from_distincts(0u32, 1u32, 10.0, 40.0);
        assert!((e.selectivity - 1.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn other_and_touches() {
        let e = JoinEdge::from_distincts(2u32, 5u32, 3.0, 4.0);
        assert_eq!(e.other(RelId(2)), Some(RelId(5)));
        assert_eq!(e.other(RelId(5)), Some(RelId(2)));
        assert_eq!(e.other(RelId(9)), None);
        assert!(e.touches(RelId(2)));
        assert!(!e.touches(RelId(3)));
    }

    #[test]
    fn distinct_on_each_side() {
        let e = JoinEdge::from_distincts(0u32, 1u32, 7.0, 11.0);
        assert_eq!(e.distinct_on(RelId(0)), Some(7.0));
        assert_eq!(e.distinct_on(RelId(1)), Some(11.0));
    }

    #[test]
    fn distinct_on_non_endpoint_is_none() {
        let e = JoinEdge::from_distincts(0u32, 1u32, 7.0, 11.0);
        assert_eq!(e.distinct_on(RelId(3)), None);
    }

    #[test]
    fn nan_distincts_are_not_masked() {
        let e = JoinEdge::new(0u32, 1u32, 0.5, f64::NAN, 4.0);
        assert!(e.distinct_a.is_nan());
        assert_eq!(e.distinct_b, 4.0);
    }

    #[test]
    fn distinct_counts_floor_at_one() {
        let e = JoinEdge::from_distincts(0u32, 1u32, 0.0, 0.5);
        assert_eq!(e.distinct_a, 1.0);
        assert_eq!(e.distinct_b, 1.0);
        assert_eq!(e.selectivity, 1.0);
    }
}
