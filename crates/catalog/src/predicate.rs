//! Selection and join predicates.

use serde::{Deserialize, Serialize};

use crate::relation::RelId;

/// A local selection predicate on one relation.
///
/// Only the selectivity matters for join ordering; the paper draws
/// selectivities from a fixed list (see `ljqo-workload`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Fraction of tuples that satisfy the predicate, in `(0, 1]`.
    pub selectivity: f64,
}

impl Selection {
    /// Create a selection. Panics in debug builds if the selectivity is not
    /// in `(0, 1]`.
    pub fn new(selectivity: f64) -> Self {
        debug_assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selection selectivity {selectivity} out of (0,1]"
        );
        Selection { selectivity }
    }
}

/// A join predicate (edge in the join graph) between two relations.
///
/// Carries the statistics the paper's heuristics consume:
///
/// * `selectivity` — the join selectivity `J_kl`, i.e.
///   `|R_k ⋈ R_l| = N_k · N_l · J_kl`;
/// * `distinct_a` / `distinct_b` — the number of distinct values `D` in the
///   join column on each side (used by the rank criterion and by KBZ).
///
/// Under the classical uniformity assumption `J_kl = 1 / max(D_a, D_b)`;
/// [`JoinEdge::from_distincts`] constructs edges that way, but callers may
/// also set an explicit selectivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// One endpoint.
    pub a: RelId,
    /// The other endpoint.
    pub b: RelId,
    /// Join selectivity `J_ab` in `(0, 1]`.
    pub selectivity: f64,
    /// Distinct values in the join column of `a`.
    pub distinct_a: f64,
    /// Distinct values in the join column of `b`.
    pub distinct_b: f64,
}

impl JoinEdge {
    /// Create an edge with an explicit selectivity and distinct counts.
    pub fn new(
        a: impl Into<RelId>,
        b: impl Into<RelId>,
        selectivity: f64,
        distinct_a: f64,
        distinct_b: f64,
    ) -> Self {
        let e = JoinEdge {
            a: a.into(),
            b: b.into(),
            selectivity,
            distinct_a: distinct_a.max(1.0),
            distinct_b: distinct_b.max(1.0),
        };
        debug_assert!(
            e.selectivity > 0.0 && e.selectivity <= 1.0,
            "join selectivity {selectivity} out of (0,1]"
        );
        debug_assert!(e.a != e.b, "self-join edge on {}", e.a);
        e
    }

    /// Create an edge whose selectivity follows the uniformity assumption
    /// `J = 1 / max(D_a, D_b)`.
    pub fn from_distincts(
        a: impl Into<RelId>,
        b: impl Into<RelId>,
        distinct_a: f64,
        distinct_b: f64,
    ) -> Self {
        let da = distinct_a.max(1.0);
        let db = distinct_b.max(1.0);
        let sel = 1.0 / da.max(db);
        JoinEdge::new(a, b, sel, da, db)
    }

    /// The endpoint other than `rel`; `None` if `rel` is not an endpoint.
    pub fn other(&self, rel: RelId) -> Option<RelId> {
        if rel == self.a {
            Some(self.b)
        } else if rel == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Whether `rel` is one of the endpoints.
    pub fn touches(&self, rel: RelId) -> bool {
        rel == self.a || rel == self.b
    }

    /// Distinct count on the side of `rel`. Panics if `rel` is not an
    /// endpoint.
    pub fn distinct_on(&self, rel: RelId) -> f64 {
        if rel == self.a {
            self.distinct_a
        } else if rel == self.b {
            self.distinct_b
        } else {
            panic!("{rel} is not an endpoint of edge {}-{}", self.a, self.b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_distincts_uses_uniformity() {
        let e = JoinEdge::from_distincts(0u32, 1u32, 10.0, 40.0);
        assert!((e.selectivity - 1.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn other_and_touches() {
        let e = JoinEdge::from_distincts(2u32, 5u32, 3.0, 4.0);
        assert_eq!(e.other(RelId(2)), Some(RelId(5)));
        assert_eq!(e.other(RelId(5)), Some(RelId(2)));
        assert_eq!(e.other(RelId(9)), None);
        assert!(e.touches(RelId(2)));
        assert!(!e.touches(RelId(3)));
    }

    #[test]
    fn distinct_on_each_side() {
        let e = JoinEdge::from_distincts(0u32, 1u32, 7.0, 11.0);
        assert_eq!(e.distinct_on(RelId(0)), 7.0);
        assert_eq!(e.distinct_on(RelId(1)), 11.0);
    }

    #[test]
    #[should_panic]
    fn distinct_on_non_endpoint_panics() {
        let e = JoinEdge::from_distincts(0u32, 1u32, 7.0, 11.0);
        let _ = e.distinct_on(RelId(3));
    }

    #[test]
    fn distinct_counts_floor_at_one() {
        let e = JoinEdge::from_distincts(0u32, 1u32, 0.0, 0.5);
        assert_eq!(e.distinct_a, 1.0);
        assert_eq!(e.distinct_b, 1.0);
        assert_eq!(e.selectivity, 1.0);
    }
}
