//! # ljqo-catalog — query model for large join query optimization
//!
//! This crate defines the *static* description of a join query as used by
//! the optimizer study in Swami, "Optimization of Large Join Queries:
//! Combining Heuristics and Combinatorial Techniques" (SIGMOD 1989) and its
//! predecessor Swami & Gupta (SIGMOD 1988):
//!
//! * [`Relation`] — a base relation with a cardinality and local selection
//!   predicates (selections are pushed down, so only their combined
//!   selectivity matters to join ordering),
//! * [`JoinEdge`] — a join predicate between two relations, carrying the
//!   join selectivity and the distinct-value counts of the join columns,
//! * [`JoinGraph`] — the undirected multigraph of join predicates,
//! * [`Query`] — relations + join graph, validated,
//! * [`QueryBuilder`] — ergonomic construction for examples and tests,
//! * [`quant`] — log-scale statistic quantization, the primitive that
//!   plan-cache fingerprints bucket cardinalities and selectivities with.
//!
//! The paper restricts attention to select-project-join queries where the
//! number of joins `N` is between 10 and 100; nothing in this crate depends
//! on that range, but the optimizer crates use `N = query.n_joins()` to
//! scale their deterministic work budgets.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bitset;
mod builder;
pub mod compiled;
mod graph;
mod predicate;
pub mod quant;
mod query;
mod relation;

pub use bitset::BlockMask;
pub use builder::QueryBuilder;
pub use compiled::{CompiledQuery, SlotRec};
pub use graph::{EdgeId, JoinGraph, SpanningTree};
pub use predicate::{JoinEdge, Selection};
pub use query::{CatalogError, Query};
pub use relation::{RelId, Relation};
