//! Multi-word bitset kernels for the large-`N` regime.
//!
//! The single-word fast paths added with [`crate::CompiledQuery`] stop at
//! 64 relations: past that, every placed-set test falls back to a general
//! word-loop over `⌈n/64⌉`-word slices, and the measured speedup collapses
//! (see `BENCH_compiled.json`). This module is the shared kernel layer
//! that keeps N = 100–1000 fast:
//!
//! * **Blocked masks** — masks are stored with a stride rounded up to
//!   [`BLOCK_WORDS`] words (4 × `u64` = one 32-byte half-cacheline per
//!   block), so kernels process fixed-size blocks with no remainder loop
//!   and the compiler keeps each block in registers.
//! * **Word-count-specialized dispatch** — every kernel has three tiers:
//!   one word (a single register, N ≤ 64), one block (a stack
//!   `[u64; 4]`, N ≤ 256), and the general chunked loop over 4-word
//!   blocks (any N). Callers branch once on [`mask_stride`] and stay on
//!   one tier for the whole query.
//! * **[`BlockMask`]** — a `Copy` one-block mask for plan-tree nodes
//!   (`TreePlan` stores two per node), raising the bushy-tree limit from
//!   64 to [`BlockMask::CAPACITY`] relations without giving up the
//!   snapshot/rollback undo log.
//!
//! Padding discipline: the words beyond the logical `⌈n/64⌉` within each
//! stride are **always zero**. Intersection-style kernels therefore
//! return identical results whether they scan the logical length or the
//! padded stride, which is what makes the blocked layout transparent to
//! the bit-identical differential suites.

/// Words per block: kernels consume masks in chunks of this many `u64`s.
pub const BLOCK_WORDS: usize = 4;

/// The storage stride, in words, for a mask whose logical length is
/// `words`: `1` stays `1` (the register tier needs no padding), anything
/// larger is rounded up to a multiple of [`BLOCK_WORDS`].
#[inline]
pub const fn mask_stride(words: usize) -> usize {
    if words <= 1 {
        1
    } else {
        words.div_ceil(BLOCK_WORDS) * BLOCK_WORDS
    }
}

/// The stride for masks over `n` relations (`mask_stride` of `⌈n/64⌉`,
/// at least 1). Mask buffers sized with this agree with the blocked
/// neighbor rows of a `CompiledQuery` over the same `n`.
#[inline]
pub const fn stride_for_relations(n: usize) -> usize {
    let words = n.div_ceil(64);
    mask_stride(if words == 0 { 1 } else { words })
}

/// Set bit `i` in a multi-word mask.
#[inline]
pub fn set_bit(mask: &mut [u64], i: usize) {
    mask[i / 64] |= 1u64 << (i % 64);
}

/// Test bit `i` in a multi-word mask.
#[inline]
pub fn test_bit(mask: &[u64], i: usize) -> bool {
    mask[i / 64] & (1u64 << (i % 64)) != 0
}

/// Whether two equal-stride masks share any set bit, specialized by
/// stride tier: single word, single block (branch-free OR-reduce over a
/// `[u64; 4]`), or the general chunked loop with per-block early exit.
///
/// Both slices must have the same length and that length must be a valid
/// [`mask_stride`] (1 or a multiple of [`BLOCK_WORDS`]).
#[inline]
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    match a.len() {
        1 => a[0] & b[0] != 0,
        BLOCK_WORDS => block_intersects(
            a.try_into().expect("one block"),
            b.try_into().expect("one block"),
        ),
        _ => {
            debug_assert_eq!(a.len() % BLOCK_WORDS, 0, "stride must be blocked");
            a.chunks_exact(BLOCK_WORDS)
                .zip(b.chunks_exact(BLOCK_WORDS))
                .any(|(ca, cb)| {
                    block_intersects(ca.try_into().expect("chunk"), cb.try_into().expect("chunk"))
                })
        }
    }
}

/// One-block intersection test: a branch-free OR-reduce the compiler
/// lowers to four ANDs and three ORs over registers.
#[inline]
fn block_intersects(a: &[u64; BLOCK_WORDS], b: &[u64; BLOCK_WORDS]) -> bool {
    ((a[0] & b[0]) | (a[1] & b[1]) | (a[2] & b[2]) | (a[3] & b[3])) != 0
}

/// A one-block (`[u64; 4]`) relation mask: the `Copy` set representation
/// plan-tree nodes carry for subtree membership and neighbor sets.
///
/// Capacity is [`BlockMask::CAPACITY`] relations; constructors and
/// `insert` debug-assert the index range. All operations are branch-free
/// register code — no heap, no loops the optimizer has to unroll.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockMask {
    words: [u64; BLOCK_WORDS],
}

impl BlockMask {
    /// Maximum number of distinct relation indices a `BlockMask` holds.
    pub const CAPACITY: usize = BLOCK_WORDS * 64;

    /// The empty mask.
    #[inline]
    pub const fn empty() -> Self {
        BlockMask {
            words: [0; BLOCK_WORDS],
        }
    }

    /// The singleton mask `{i}`.
    #[inline]
    pub fn singleton(i: usize) -> Self {
        let mut m = Self::empty();
        m.insert(i);
        m
    }

    /// Build from the leading words of a logical mask slice (at most one
    /// block's worth; shorter slices are zero-extended).
    #[inline]
    pub fn from_words(words: &[u64]) -> Self {
        debug_assert!(words.len() <= BLOCK_WORDS);
        let mut m = Self::empty();
        m.words[..words.len()].copy_from_slice(words);
        m
    }

    /// Set bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < Self::CAPACITY);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        debug_assert!(i < Self::CAPACITY);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Whether any bit is shared with `other`.
    #[inline]
    pub fn intersects(&self, other: &BlockMask) -> bool {
        block_intersects(&self.words, &other.words)
    }

    /// Whether no bit is shared with `other`.
    #[inline]
    pub fn is_disjoint(&self, other: &BlockMask) -> bool {
        !self.intersects(other)
    }

    /// Whether the mask is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (self.words[0] | self.words[1] | self.words[2] | self.words[3]) == 0
    }

    /// The union of two masks.
    #[inline]
    pub fn union(&self, other: &BlockMask) -> BlockMask {
        BlockMask {
            words: [
                self.words[0] | other.words[0],
                self.words[1] | other.words[1],
                self.words[2] | other.words[2],
                self.words[3] | other.words[3],
            ],
        }
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words[0].count_ones()
            + self.words[1].count_ones()
            + self.words[2].count_ones()
            + self.words[3].count_ones()
    }

    /// The raw words.
    #[inline]
    pub fn words(&self) -> &[u64; BLOCK_WORDS] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_tiers() {
        assert_eq!(mask_stride(1), 1);
        assert_eq!(mask_stride(2), 4);
        assert_eq!(mask_stride(4), 4);
        assert_eq!(mask_stride(5), 8);
        assert_eq!(mask_stride(16), 16);
        assert_eq!(stride_for_relations(0), 1);
        assert_eq!(stride_for_relations(64), 1);
        assert_eq!(stride_for_relations(65), 4);
        assert_eq!(stride_for_relations(256), 4);
        assert_eq!(stride_for_relations(257), 8);
        assert_eq!(stride_for_relations(1000), 16);
    }

    #[test]
    fn intersects_matches_scalar_on_all_tiers() {
        for &stride in &[1usize, 4, 8, 16] {
            let bits = stride * 64;
            // Deterministic pseudo-random masks via a simple LCG.
            let mut s = 0x9e3779b97f4a7c15u64;
            let mut next = move || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s
            };
            for trial in 0..50 {
                let mut a = vec![0u64; stride];
                let mut b = vec![0u64; stride];
                for w in 0..stride {
                    a[w] = next() & next();
                    b[w] = next() & next();
                }
                if trial % 5 == 0 {
                    b.fill(0); // force the disjoint branch
                }
                let scalar = (0..bits).any(|i| test_bit(&a, i) && test_bit(&b, i));
                assert_eq!(intersects(&a, &b), scalar, "stride {stride} trial {trial}");
            }
        }
    }

    #[test]
    fn block_mask_ops() {
        let mut a = BlockMask::empty();
        assert!(a.is_empty());
        a.insert(0);
        a.insert(63);
        a.insert(64);
        a.insert(255);
        assert_eq!(a.count_ones(), 4);
        assert!(a.test(64) && !a.test(65));

        let b = BlockMask::singleton(64);
        assert!(a.intersects(&b));
        assert!(a.is_disjoint(&BlockMask::singleton(70)));

        let u = a.union(&b);
        assert_eq!(u, a);
        assert_eq!(BlockMask::from_words(&[1, 2]).count_ones(), 2);
    }
}
