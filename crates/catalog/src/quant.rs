//! Log-scale statistic quantization.
//!
//! Plan caching keys queries by a fingerprint that deliberately collapses
//! cardinality and selectivity detail: Simpli-Squared-style studies show
//! join orders are robust to coarse statistics, so queries whose
//! statistics agree *up to a log-scale bucket* can share one optimized
//! order. This module is the single quantization primitive those
//! fingerprints are built from; keeping it in the catalog crate lets any
//! consumer (cache, workload analysis, dashboards) bucket statistics the
//! same way.
//!
//! A bucket is an index on the base-10 logarithmic axis, with
//! `buckets_per_decade` buckets per factor of ten. Two values fall in the
//! same bucket iff their `log10` differ by less than the bucket width
//! `1 / buckets_per_decade` *and* they do not straddle a bucket boundary;
//! values whose logs differ by more than one full bucket width are
//! guaranteed to land in different buckets.
//!
//! Quantization is per-*value* and carries no per-query state: no
//! bitsets, no `N`-sized buffers, nothing that dispatches on the word
//! count of a relation mask (audited as part of the large-N regime work
//! — the fingerprint's canonical BFS was the only cache-layer component
//! with a size-sensitive code path). The buckets computed here are
//! therefore identical at N = 4 and N = 1000.

use crate::predicate::JoinEdge;
use crate::relation::{RelId, Relation};

/// The log-scale bucket index of `value` with `buckets_per_decade`
/// buckets per factor of ten.
///
/// Non-positive and non-finite inputs (which a validated catalog never
/// produces) are mapped to the sentinel bucket `i64::MIN` so that callers
/// on unvalidated data get a stable, obviously-out-of-band value instead
/// of a panic or a NaN-derived cast.
///
/// `buckets_per_decade == 0` is treated as 1 (one bucket per decade).
#[inline]
pub fn log_bucket(value: f64, buckets_per_decade: u32) -> i64 {
    if !value.is_finite() || value <= 0.0 {
        return i64::MIN;
    }
    let bpd = buckets_per_decade.max(1) as f64;
    (value.log10() * bpd).floor() as i64
}

/// The half-open value range `[lo, hi)` covered by `bucket` at
/// `buckets_per_decade`. Inverse of [`log_bucket`] (up to floating-point
/// rounding at the boundaries); useful for tests and diagnostics.
pub fn bucket_bounds(bucket: i64, buckets_per_decade: u32) -> (f64, f64) {
    let bpd = buckets_per_decade.max(1) as f64;
    let lo = 10f64.powf(bucket as f64 / bpd);
    let hi = 10f64.powf((bucket + 1) as f64 / bpd);
    (lo, hi)
}

impl Relation {
    /// Log-scale bucket of the effective cardinality (`N_k` after
    /// selections). See [`log_bucket`].
    pub fn cardinality_bucket(&self, buckets_per_decade: u32) -> i64 {
        log_bucket(self.cardinality(), buckets_per_decade)
    }
}

impl JoinEdge {
    /// Log-scale bucket of the join selectivity. Selectivities live in
    /// `(0, 1]`, so buckets are `<= 0`. See [`log_bucket`].
    pub fn selectivity_bucket(&self, buckets_per_decade: u32) -> i64 {
        log_bucket(self.selectivity, buckets_per_decade)
    }

    /// Log-scale bucket of the distinct count on the side of `rel`;
    /// `None` if `rel` is not an endpoint.
    pub fn distinct_bucket(&self, rel: RelId, buckets_per_decade: u32) -> Option<i64> {
        self.distinct_on(rel)
            .map(|d| log_bucket(d, buckets_per_decade))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_log_axis() {
        // 4 buckets per decade: width 10^(1/4) ≈ 1.778.
        assert_eq!(log_bucket(1.0, 4), 0);
        assert_eq!(log_bucket(1.7, 4), 0);
        assert_eq!(log_bucket(1.8, 4), 1);
        assert_eq!(log_bucket(10.0, 4), 4);
        assert_eq!(log_bucket(1000.0, 4), 12);
    }

    #[test]
    fn values_more_than_one_width_apart_always_differ() {
        let bpd = 3u32;
        for exp in -8..8 {
            let x = 10f64.powi(exp) * 2.37;
            // Anything beyond one full bucket width (10^(1/bpd)) away in
            // ratio must land in a different bucket.
            let far = x * 10f64.powf(1.0 / bpd as f64) * 1.001;
            assert_ne!(log_bucket(x, bpd), log_bucket(far, bpd), "x = {x}");
        }
    }

    #[test]
    fn bounds_invert_the_bucket() {
        for &v in &[0.003, 0.7, 1.0, 42.0, 1.6e7] {
            let b = log_bucket(v, 5);
            let (lo, hi) = bucket_bounds(b, 5);
            assert!(lo <= v && v < hi * (1.0 + 1e-12), "{v} not in [{lo}, {hi})");
        }
    }

    #[test]
    fn degenerate_inputs_hit_the_sentinel() {
        assert_eq!(log_bucket(0.0, 4), i64::MIN);
        assert_eq!(log_bucket(-3.0, 4), i64::MIN);
        assert_eq!(log_bucket(f64::NAN, 4), i64::MIN);
        assert_eq!(log_bucket(f64::INFINITY, 4), i64::MIN);
    }

    #[test]
    fn zero_buckets_per_decade_acts_as_one() {
        assert_eq!(log_bucket(5.0, 0), log_bucket(5.0, 1));
    }

    #[test]
    fn relation_and_edge_hooks_agree_with_the_primitive() {
        let r = Relation::new("r", 1000).with_selection(0.5);
        assert_eq!(r.cardinality_bucket(4), log_bucket(500.0, 4));
        let e = JoinEdge::from_distincts(0u32, 1u32, 40.0, 25.0);
        assert_eq!(e.selectivity_bucket(4), log_bucket(1.0 / 40.0, 4));
        assert_eq!(e.distinct_bucket(RelId(0), 4), Some(log_bucket(40.0, 4)));
        assert_eq!(e.distinct_bucket(RelId(7), 4), None);
    }
}
