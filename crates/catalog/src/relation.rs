//! Base relations and their statistics.

use std::fmt;

use crate::predicate::Selection;

/// Identifier of a relation within a [`crate::Query`].
///
/// Relation ids are dense indices `0..n_relations`; they index directly into
/// `Query::relations` and into permutation vectors in the plan crate. A
/// `u32` is ample (the paper tops out at 101 relations) and keeps hot plan
/// structures small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for RelId {
    fn from(v: u32) -> Self {
        RelId(v)
    }
}

impl From<usize> for RelId {
    fn from(v: usize) -> Self {
        RelId(u32::try_from(v).expect("relation index exceeds u32"))
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A base relation participating in the query.
///
/// Following the paper, selections are assumed to be pushed down below all
/// joins, so the quantity relevant to join ordering is the *effective*
/// cardinality: the base cardinality multiplied by the selectivities of all
/// local selection predicates (`N_k` in the paper's notation).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Human-readable name (used in plan display and examples).
    pub name: String,
    /// Number of tuples in the stored relation, before selections.
    pub base_cardinality: u64,
    /// Local selection predicates applied to this relation.
    pub selections: Vec<Selection>,
}

impl Relation {
    /// Create a relation with no selections.
    pub fn new(name: impl Into<String>, base_cardinality: u64) -> Self {
        Relation {
            name: name.into(),
            base_cardinality,
            selections: Vec::new(),
        }
    }

    /// Add a selection predicate with the given selectivity, returning
    /// `self` for chaining.
    #[must_use]
    pub fn with_selection(mut self, selectivity: f64) -> Self {
        self.selections.push(Selection::new(selectivity));
        self
    }

    /// Combined selectivity of all pushed-down selections.
    pub fn selection_selectivity(&self) -> f64 {
        self.selections.iter().map(|s| s.selectivity).product()
    }

    /// Effective cardinality `N_k`: tuples surviving all selections.
    ///
    /// At least 1.0, so that downstream size estimates never collapse to
    /// zero and cost ratios stay well-defined.
    pub fn cardinality(&self) -> f64 {
        (self.base_cardinality as f64 * self.selection_selectivity()).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_id_roundtrip() {
        let id = RelId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(RelId::from(7u32), id);
        assert_eq!(id.to_string(), "R7");
    }

    #[test]
    fn effective_cardinality_applies_selections() {
        let r = Relation::new("emp", 1000)
            .with_selection(0.5)
            .with_selection(0.1);
        assert!((r.cardinality() - 50.0).abs() < 1e-9);
        assert!((r.selection_selectivity() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn effective_cardinality_floors_at_one() {
        let r = Relation::new("tiny", 10).with_selection(0.001);
        assert_eq!(r.cardinality(), 1.0);
    }

    #[test]
    fn no_selection_means_base_cardinality() {
        let r = Relation::new("dept", 42);
        assert_eq!(r.cardinality(), 42.0);
        assert_eq!(r.selection_selectivity(), 1.0);
    }
}
