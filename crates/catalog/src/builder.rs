//! Ergonomic query construction for examples and tests.

use crate::predicate::JoinEdge;
use crate::query::{CatalogError, Query};
use crate::relation::{RelId, Relation};

/// Fluent builder for [`Query`].
///
/// ```
/// use ljqo_catalog::QueryBuilder;
///
/// let q = QueryBuilder::new()
///     .relation("orders", 100_000)
///     .relation_with_selection("customers", 10_000, 0.1)
///     .relation("nations", 25)
///     .join_on_distincts("orders", "customers", 10_000.0, 10_000.0)
///     .join_on_distincts("customers", "nations", 25.0, 25.0)
///     .build()
///     .unwrap();
/// assert_eq!(q.n_joins(), 2);
/// ```
#[derive(Debug, Default)]
pub struct QueryBuilder {
    relations: Vec<Relation>,
    edges: Vec<JoinEdge>,
}

impl QueryBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a relation; its id is the order of insertion.
    #[must_use]
    pub fn relation(mut self, name: impl Into<String>, cardinality: u64) -> Self {
        self.relations.push(Relation::new(name, cardinality));
        self
    }

    /// Add a relation with one pushed-down selection.
    #[must_use]
    pub fn relation_with_selection(
        mut self,
        name: impl Into<String>,
        cardinality: u64,
        selectivity: f64,
    ) -> Self {
        self.relations
            .push(Relation::new(name, cardinality).with_selection(selectivity));
        self
    }

    /// Add a selection predicate to the most recently added relation.
    /// Panics if no relation has been added yet.
    #[must_use]
    pub fn add_selection_to_last(mut self, selectivity: f64) -> Self {
        let rel = self
            .relations
            .last_mut()
            .expect("add_selection_to_last before any relation");
        rel.selections
            .push(crate::predicate::Selection::new(selectivity));
        self
    }

    /// Look up a relation id by name. Panics if the name is unknown (builder
    /// misuse is a programming error in examples/tests).
    fn id_of(&self, name: &str) -> RelId {
        let idx = self
            .relations
            .iter()
            .position(|r| r.name == name)
            .unwrap_or_else(|| panic!("unknown relation {name:?} in QueryBuilder"));
        RelId::from(idx)
    }

    /// Add a join predicate by relation names with an explicit selectivity.
    /// Distinct counts default to `1 / selectivity` on both sides, which is
    /// consistent with the uniformity assumption.
    #[must_use]
    pub fn join(mut self, a: &str, b: &str, selectivity: f64) -> Self {
        let (ia, ib) = (self.id_of(a), self.id_of(b));
        let d = (1.0 / selectivity).max(1.0);
        self.edges.push(JoinEdge::new(ia, ib, selectivity, d, d));
        self
    }

    /// Add a join predicate by relation names with distinct-value counts;
    /// the selectivity follows `1 / max(D_a, D_b)`.
    #[must_use]
    pub fn join_on_distincts(mut self, a: &str, b: &str, distinct_a: f64, distinct_b: f64) -> Self {
        let (ia, ib) = (self.id_of(a), self.id_of(b));
        self.edges
            .push(JoinEdge::from_distincts(ia, ib, distinct_a, distinct_b));
        self
    }

    /// Add a join predicate by relation ids.
    #[must_use]
    pub fn join_ids(mut self, edge: JoinEdge) -> Self {
        self.edges.push(edge);
        self
    }

    /// Finish and validate.
    pub fn build(self) -> Result<Query, CatalogError> {
        Query::new(self.relations, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .join("a", "b", 0.1)
            .build()
            .unwrap();
        assert_eq!(q.relation(RelId(0)).name, "a");
        assert_eq!(q.relation(RelId(1)).name, "b");
        assert!(q.graph().joined(RelId(0), RelId(1)));
    }

    #[test]
    fn join_defaults_distincts_from_selectivity() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .join("a", "b", 0.05)
            .build()
            .unwrap();
        let e = &q.graph().edges()[0];
        assert!((e.distinct_a - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn unknown_name_panics() {
        let _ = QueryBuilder::new().relation("a", 10).join("a", "zzz", 0.5);
    }

    #[test]
    fn selection_is_recorded() {
        let q = QueryBuilder::new()
            .relation_with_selection("a", 100, 0.25)
            .build()
            .unwrap();
        assert_eq!(q.cardinality(RelId(0)), 25.0);
    }
}
