//! Ergonomic query construction for examples and tests.

use crate::predicate::JoinEdge;
use crate::query::{CatalogError, Query};
use crate::relation::{RelId, Relation};

/// Fluent builder for [`Query`].
///
/// ```
/// use ljqo_catalog::QueryBuilder;
///
/// let q = QueryBuilder::new()
///     .relation("orders", 100_000)
///     .relation_with_selection("customers", 10_000, 0.1)
///     .relation("nations", 25)
///     .join_on_distincts("orders", "customers", 10_000.0, 10_000.0)
///     .join_on_distincts("customers", "nations", 25.0, 25.0)
///     .build()
///     .unwrap();
/// assert_eq!(q.n_joins(), 2);
/// ```
#[derive(Debug, Default)]
pub struct QueryBuilder {
    relations: Vec<Relation>,
    edges: Vec<JoinEdge>,
    /// First misuse error, surfaced at [`QueryBuilder::build`]. The fluent
    /// API stays panic-free: a bad call poisons the builder instead of
    /// aborting the process.
    error: Option<CatalogError>,
}

impl QueryBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn poison(&mut self, err: CatalogError) {
        if self.error.is_none() {
            self.error = Some(err);
        }
    }

    /// Add a relation; its id is the order of insertion.
    #[must_use]
    pub fn relation(mut self, name: impl Into<String>, cardinality: u64) -> Self {
        self.relations.push(Relation::new(name, cardinality));
        self
    }

    /// Add a relation with one pushed-down selection.
    #[must_use]
    pub fn relation_with_selection(
        mut self,
        name: impl Into<String>,
        cardinality: u64,
        selectivity: f64,
    ) -> Self {
        self.relations
            .push(Relation::new(name, cardinality).with_selection(selectivity));
        self
    }

    /// Add a selection predicate to the most recently added relation. If no
    /// relation has been added yet the builder is poisoned and the error
    /// surfaces at [`QueryBuilder::build`].
    #[must_use]
    pub fn add_selection_to_last(mut self, selectivity: f64) -> Self {
        match self.relations.last_mut() {
            Some(rel) => rel
                .selections
                .push(crate::predicate::Selection::new(selectivity)),
            None => self.poison(CatalogError::SelectionBeforeRelation),
        }
        self
    }

    /// Look up a relation id by name; `None` poisons the builder.
    fn id_of(&mut self, name: &str) -> Option<RelId> {
        match self.relations.iter().position(|r| r.name == name) {
            Some(idx) => Some(RelId::from(idx)),
            None => {
                self.poison(CatalogError::UnknownRelation(name.to_string()));
                None
            }
        }
    }

    /// Add a join predicate by relation names with an explicit selectivity.
    /// Distinct counts default to `1 / selectivity` on both sides (the
    /// uniformity assumption), clamped to each side's effective cardinality
    /// — a join column cannot hold more distinct values than the relation
    /// has tuples.
    ///
    /// A selectivity outside `(0, 1]` (including NaN) poisons the builder
    /// at the call site: deferring it to `Query::new` would first derive
    /// nonsense distinct counts from it and report those instead of the
    /// actual mistake.
    #[must_use]
    pub fn join(mut self, a: &str, b: &str, selectivity: f64) -> Self {
        if !(selectivity > 0.0 && selectivity <= 1.0) {
            self.poison(CatalogError::BadSelectivity {
                context: format!("join {a}-{b} in QueryBuilder"),
                value: selectivity,
            });
            return self;
        }
        let (Some(ia), Some(ib)) = (self.id_of(a), self.id_of(b)) else {
            return self;
        };
        let d = (1.0 / selectivity).max(1.0);
        let da = d.min(self.relations[ia.index()].cardinality());
        let db = d.min(self.relations[ib.index()].cardinality());
        self.edges.push(JoinEdge::new(ia, ib, selectivity, da, db));
        self
    }

    /// Add a join predicate by relation names with distinct-value counts;
    /// the selectivity follows `1 / max(D_a, D_b)`.
    ///
    /// Distinct counts are validated at the call site instead of being
    /// silently floored: a non-finite or sub-1 count poisons the builder
    /// with [`CatalogError::NonFinite`], and a count exceeding the
    /// relation's base cardinality with
    /// [`CatalogError::DistinctExceedsCardinality`] — so a perturbed or
    /// hand-built catalog cannot smuggle impossible statistics past the
    /// builder.
    #[must_use]
    pub fn join_on_distincts(mut self, a: &str, b: &str, distinct_a: f64, distinct_b: f64) -> Self {
        let (Some(ia), Some(ib)) = (self.id_of(a), self.id_of(b)) else {
            return self;
        };
        for (rel, name, distinct) in [(ia, a, distinct_a), (ib, b, distinct_b)] {
            if !distinct.is_finite() || distinct < 1.0 {
                self.poison(CatalogError::NonFinite {
                    context: format!("distinct count on {name} of join {a}-{b} in QueryBuilder"),
                    value: distinct,
                });
                return self;
            }
            let cardinality = self.relations[rel.index()].base_cardinality as f64;
            if distinct > cardinality * (1.0 + 1e-9) {
                self.poison(CatalogError::DistinctExceedsCardinality {
                    rel,
                    distinct,
                    cardinality,
                });
                return self;
            }
        }
        self.edges
            .push(JoinEdge::from_distincts(ia, ib, distinct_a, distinct_b));
        self
    }

    /// Add a join predicate by relation ids.
    #[must_use]
    pub fn join_ids(mut self, edge: JoinEdge) -> Self {
        self.edges.push(edge);
        self
    }

    /// Finish and validate: the first builder-misuse error (unknown name,
    /// selection before any relation) takes precedence, then the full
    /// [`Query::new`] validation pass runs.
    pub fn build(self) -> Result<Query, CatalogError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        Query::new(self.relations, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .join("a", "b", 0.1)
            .build()
            .unwrap();
        assert_eq!(q.relation(RelId(0)).name, "a");
        assert_eq!(q.relation(RelId(1)).name, "b");
        assert!(q.graph().joined(RelId(0), RelId(1)));
    }

    #[test]
    fn join_defaults_distincts_from_selectivity() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .join("a", "b", 0.05)
            .build()
            .unwrap();
        let e = &q.graph().edges()[0];
        // 1/0.05 = 20 distincts, clamped to a's 10 tuples on that side.
        assert!((e.distinct_a - 10.0).abs() < 1e-9);
        assert!((e.distinct_b - 20.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_name_is_deferred_to_build() {
        let err = QueryBuilder::new()
            .relation("a", 10)
            .join("a", "zzz", 0.5)
            .build()
            .unwrap_err();
        assert_eq!(err, CatalogError::UnknownRelation("zzz".into()));
    }

    #[test]
    fn selection_before_relation_is_deferred_to_build() {
        let err = QueryBuilder::new()
            .add_selection_to_last(0.5)
            .relation("a", 10)
            .build()
            .unwrap_err();
        assert_eq!(err, CatalogError::SelectionBeforeRelation);
    }

    #[test]
    fn first_error_wins() {
        let err = QueryBuilder::new()
            .relation("a", 10)
            .join("a", "zzz", 0.5)
            .join("a", "yyy", 0.5)
            .build()
            .unwrap_err();
        assert_eq!(err, CatalogError::UnknownRelation("zzz".into()));
    }

    #[test]
    fn out_of_range_selectivity_poisons_the_join_call() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let err = QueryBuilder::new()
                .relation("a", 10)
                .relation("b", 20)
                .join("a", "b", bad)
                .build()
                .unwrap_err();
            match err {
                CatalogError::BadSelectivity { context, value } => {
                    assert!(context.contains("join a-b"), "context {context:?}");
                    assert!(value.is_nan() == bad.is_nan() && (value == bad || bad.is_nan()));
                }
                other => panic!("expected BadSelectivity for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn excessive_distinct_count_poisons_the_builder() {
        let err = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .join_on_distincts("a", "b", 50.0, 20.0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CatalogError::DistinctExceedsCardinality {
                rel: RelId(0),
                distinct: 50.0,
                cardinality: 10.0,
            }
        );
    }

    #[test]
    fn non_finite_distinct_count_poisons_the_builder() {
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let err = QueryBuilder::new()
                .relation("a", 10)
                .relation("b", 20)
                .join_on_distincts("a", "b", 5.0, bad)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, CatalogError::NonFinite { .. }),
                "expected NonFinite for {bad}, got {err:?}"
            );
        }
    }

    #[test]
    fn bad_join_stat_respects_first_error_wins() {
        let err = QueryBuilder::new()
            .relation("a", 10)
            .join("a", "zzz", 0.5)
            .join("a", "a", -1.0)
            .build()
            .unwrap_err();
        assert_eq!(err, CatalogError::UnknownRelation("zzz".into()));
    }

    #[test]
    fn selection_is_recorded() {
        let q = QueryBuilder::new()
            .relation_with_selection("a", 100, 0.25)
            .build()
            .unwrap();
        assert_eq!(q.cardinality(RelId(0)), 25.0);
    }
}
