//! Compiled query snapshots: flat, cache-friendly encodings of a query.
//!
//! The optimizer's inner loops — validity filtering of proposed moves,
//! static selectivity folds, frontier scans — walk the join graph millions
//! of times per run. [`crate::JoinGraph`] stores one `Vec<EdgeId>` per
//! relation and one [`crate::JoinEdge`] struct per edge, so every walk
//! chases two pointer indirections and re-derives "which endpoint is the
//! other one" per edge. [`CompiledQuery`] is built **once** per
//! [`Query`] and flattens everything the hot loops touch:
//!
//! * **CSR adjacency** — one flat slot array plus per-relation offsets.
//!   Slot `s` of relation `r` carries the edge id, the *other* endpoint,
//!   the edge selectivity, and the distinct counts, pre-resolved so the
//!   loop body is branch-light array reads. Slots preserve exactly the
//!   per-relation edge order of [`crate::JoinGraph::incident`], which is
//!   what keeps compiled selectivity folds bit-identical to the
//!   edge-chasing reference (`f64` multiplication is not associative, so
//!   the fold order is part of the contract).
//! * **Structure-of-arrays stats** — per-relation effective cardinalities
//!   and per-edge endpoint/selectivity/distinct arrays.
//! * **Neighbor bitsets** — one `⌈n/64⌉`-word mask per relation marking
//!   its distinct neighbors, so "does `r` join the placed set?" becomes a
//!   handful of word-ANDs ([`CompiledQuery::connects`]) instead of an
//!   `O(deg)` edge chase.
//!
//! The snapshot is immutable and self-contained (it copies the statistics
//! it needs), so optimizers share one instance behind an `Arc` across
//! workers, move generators, and incremental evaluators.
//!
//! # Bit-identical contract
//!
//! Everything derivable from a `CompiledQuery` must equal what the
//! uncompiled `Query`/`JoinGraph` walk produces **bit for bit**: same
//! incident-edge iteration order, same statistics values (copied, not
//! recomputed). The differential property suites in `ljqo-plan` and
//! `ljqo-cost` assert this over random catalogs.

use crate::bitset::{self, BlockMask, BLOCK_WORDS};
use crate::graph::{EdgeId, JoinGraph};
use crate::query::Query;
use crate::relation::RelId;

/// One CSR slot's hot statistics, packed into a single record so the
/// selectivity folds of the size walker touch one contiguous stream per
/// relation instead of four parallel arrays (the "blocked CSR" layout:
/// at N = 1000 the per-relation records span a handful of cachelines and
/// stay resident across the walk).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotRec {
    /// Selectivity of the slot's edge.
    pub sel: f64,
    /// Distinct count on the owning relation's side of the slot's edge.
    pub inner_distinct: f64,
    /// The *other* endpoint of the slot's edge.
    pub other: RelId,
    /// Side index (0 = `a`, 1 = `b`) of the *other* endpoint.
    pub other_side: u8,
}

/// An immutable, flattened snapshot of a [`Query`] for the optimizer's
/// hot loops: CSR adjacency, structure-of-arrays statistics, and
/// per-relation neighbor bitsets.
///
/// # Example
///
/// ```
/// use ljqo_catalog::{CompiledQuery, QueryBuilder, RelId};
///
/// let query = QueryBuilder::new()
///     .relation("a", 100)
///     .relation("b", 200)
///     .relation("c", 300)
///     .join("a", "b", 0.01)
///     .join("b", "c", 0.05)
///     .build()
///     .unwrap();
/// let cq = CompiledQuery::new(&query);
///
/// // CSR slots mirror JoinGraph::incident, with the other endpoint and
/// // the selectivity pre-resolved.
/// let slots = cq.slot_range(RelId(1));
/// assert_eq!(slots.len(), 2);
/// assert_eq!(cq.slot_other(slots.start), RelId(0));
///
/// // Connectivity against a placed set is a word-AND.
/// let mut placed = vec![0u64; cq.words_per_rel()];
/// assert!(!cq.connects(RelId(2), &placed));
/// placed[0] |= 1 << 1; // place b
/// assert!(cq.connects(RelId(2), &placed));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    n_relations: usize,
    n_edges: usize,
    words_per_rel: usize,
    /// Storage stride of each neighbor-mask row: `words_per_rel` rounded
    /// up per [`bitset::mask_stride`], with the padding words zero.
    mask_stride: usize,

    /// CSR offsets: slots of relation `r` are
    /// `slot_offsets[r] .. slot_offsets[r + 1]`.
    slot_offsets: Vec<u32>,
    /// Edge id of each slot, in [`JoinGraph::incident`] order.
    slot_edge: Vec<EdgeId>,
    /// Packed hot statistics of each slot (other endpoint, selectivity,
    /// inner distinct, other side), in [`JoinGraph::incident`] order.
    slot_recs: Vec<SlotRec>,

    /// Per-edge SoA: endpoint `a`.
    edge_a: Vec<RelId>,
    /// Per-edge SoA: endpoint `b`.
    edge_b: Vec<RelId>,
    /// Per-edge SoA: selectivity.
    edge_sel: Vec<f64>,
    /// Per-edge SoA: distinct counts `[on a, on b]`.
    edge_distinct: Vec<[f64; 2]>,

    /// Effective cardinality per relation.
    cardinality: Vec<f64>,
    /// Distinct-neighbor count per relation (`deg(k)` in the paper).
    degree: Vec<u32>,
    /// Flattened neighbor bitsets: `mask_stride` words per relation, the
    /// first `words_per_rel` logical and the rest zero padding (so the
    /// blocked kernels can scan whole rows without a remainder loop).
    neighbor_words: Vec<u64>,
}

impl CompiledQuery {
    /// Compile `query` into the flat hot-loop representation. `O(V + E)`.
    pub fn new(query: &Query) -> Self {
        let cardinality = query.rel_ids().map(|r| query.cardinality(r)).collect();
        Self::from_graph(query.graph(), cardinality)
    }

    /// Compile from a graph plus explicit per-relation cardinalities
    /// (callers without a full [`Query`], e.g. tests over raw graphs).
    ///
    /// Panics if `cardinality.len() != graph.n_relations()`.
    pub fn from_graph(graph: &JoinGraph, cardinality: Vec<f64>) -> Self {
        let n = graph.n_relations();
        assert_eq!(
            cardinality.len(),
            n,
            "one cardinality per relation required"
        );
        let n_edges = graph.edges().len();
        let words_per_rel = n.div_ceil(64).max(1);
        let mask_stride = bitset::mask_stride(words_per_rel);

        let n_slots = 2 * n_edges;
        let mut slot_offsets = Vec::with_capacity(n + 1);
        let mut slot_edge = Vec::with_capacity(n_slots);
        let mut slot_recs = Vec::with_capacity(n_slots);
        let mut neighbor_words = vec![0u64; n * mask_stride];
        let mut degree = Vec::with_capacity(n);

        for r in 0..n {
            let rel = RelId(r as u32);
            slot_offsets.push(slot_edge.len() as u32);
            let base = r * mask_stride;
            for &eid in graph.incident(rel) {
                let e = graph.edge(eid);
                // Self-loops are rejected at graph construction, so the
                // other endpoint always exists.
                let other = if e.a == rel { e.b } else { e.a };
                slot_edge.push(eid);
                slot_recs.push(SlotRec {
                    sel: e.selectivity,
                    inner_distinct: if e.a == rel {
                        e.distinct_a
                    } else {
                        e.distinct_b
                    },
                    other,
                    other_side: u8::from(e.b == other),
                });
                neighbor_words[base + other.index() / 64] |= 1u64 << (other.index() % 64);
            }
            degree.push(
                neighbor_words[base..base + words_per_rel]
                    .iter()
                    .map(|w| w.count_ones())
                    .sum(),
            );
        }
        slot_offsets.push(slot_edge.len() as u32);

        let mut edge_a = Vec::with_capacity(n_edges);
        let mut edge_b = Vec::with_capacity(n_edges);
        let mut edge_sel = Vec::with_capacity(n_edges);
        let mut edge_distinct = Vec::with_capacity(n_edges);
        for e in graph.edges() {
            edge_a.push(e.a);
            edge_b.push(e.b);
            edge_sel.push(e.selectivity);
            edge_distinct.push([e.distinct_a, e.distinct_b]);
        }

        CompiledQuery {
            n_relations: n,
            n_edges,
            words_per_rel,
            mask_stride,
            slot_offsets,
            slot_edge,
            slot_recs,
            edge_a,
            edge_b,
            edge_sel,
            edge_distinct,
            cardinality,
            degree,
            neighbor_words,
        }
    }

    /// Number of relations.
    #[inline]
    pub fn n_relations(&self) -> usize {
        self.n_relations
    }

    /// Number of join edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Words per relation in the neighbor bitsets (`⌈n/64⌉`, at least 1).
    /// Placed-set masks handed to [`CompiledQuery::connects`] must have
    /// exactly this length.
    #[inline]
    pub fn words_per_rel(&self) -> usize {
        self.words_per_rel
    }

    /// Storage stride, in words, of the blocked neighbor-mask rows
    /// ([`crate::bitset::mask_stride`] of [`CompiledQuery::words_per_rel`]).
    /// Placed-set masks handed to [`CompiledQuery::connects_blocks`] must
    /// have exactly this length; the words past `words_per_rel` are zero.
    #[inline]
    pub fn mask_stride(&self) -> usize {
        self.mask_stride
    }

    /// The CSR slot range of `rel`: one slot per incident edge, in
    /// exactly the order of [`JoinGraph::incident`].
    #[inline]
    pub fn slot_range(&self, rel: RelId) -> std::ops::Range<usize> {
        let r = rel.index();
        self.slot_offsets[r] as usize..self.slot_offsets[r + 1] as usize
    }

    /// Edge id of slot `s`.
    #[inline]
    pub fn slot_edge(&self, s: usize) -> EdgeId {
        self.slot_edge[s]
    }

    /// The other endpoint of slot `s`'s edge (relative to the slot's
    /// owning relation).
    #[inline]
    pub fn slot_other(&self, s: usize) -> RelId {
        self.slot_recs[s].other
    }

    /// Selectivity of slot `s`'s edge.
    #[inline]
    pub fn slot_selectivity(&self, s: usize) -> f64 {
        self.slot_recs[s].sel
    }

    /// Distinct count on the owning relation's side of slot `s`'s edge.
    #[inline]
    pub fn slot_inner_distinct(&self, s: usize) -> f64 {
        self.slot_recs[s].inner_distinct
    }

    /// Side index (0 = `a`, 1 = `b`) of the *other* endpoint of slot
    /// `s`'s edge — the index into [`CompiledQuery::edge_distinct`] for
    /// the outer side when walking from the slot's owner.
    #[inline]
    pub fn slot_other_side(&self, s: usize) -> usize {
        usize::from(self.slot_recs[s].other_side)
    }

    /// The packed hot records of `rel`'s CSR slots, in exactly the order
    /// of [`JoinGraph::incident`]: one contiguous stream the selectivity
    /// folds walk instead of four parallel arrays.
    #[inline]
    pub fn slot_records(&self, rel: RelId) -> &[SlotRec] {
        &self.slot_recs[self.slot_range(rel)]
    }

    /// Endpoint `a` of edge `eid`.
    #[inline]
    pub fn edge_a(&self, eid: EdgeId) -> RelId {
        self.edge_a[eid.index()]
    }

    /// Endpoint `b` of edge `eid`.
    #[inline]
    pub fn edge_b(&self, eid: EdgeId) -> RelId {
        self.edge_b[eid.index()]
    }

    /// Selectivity of edge `eid`.
    #[inline]
    pub fn edge_selectivity(&self, eid: EdgeId) -> f64 {
        self.edge_sel[eid.index()]
    }

    /// Distinct counts `[on a, on b]` of edge `eid`.
    #[inline]
    pub fn edge_distinct(&self, eid: EdgeId) -> [f64; 2] {
        self.edge_distinct[eid.index()]
    }

    /// Effective cardinality of `rel` (identical to
    /// [`Query::cardinality`]).
    #[inline]
    pub fn cardinality(&self, rel: RelId) -> f64 {
        self.cardinality[rel.index()]
    }

    /// Distinct-neighbor count of `rel` (identical to
    /// [`JoinGraph::degree`]).
    #[inline]
    pub fn degree(&self, rel: RelId) -> usize {
        self.degree[rel.index()] as usize
    }

    /// The neighbor bitset of `rel`: `words_per_rel` words, bit `i` of
    /// word `i / 64` set iff some join predicate links `rel` and
    /// relation `i`.
    #[inline]
    pub fn neighbor_mask(&self, rel: RelId) -> &[u64] {
        let base = rel.index() * self.mask_stride;
        &self.neighbor_words[base..base + self.words_per_rel]
    }

    /// The blocked neighbor row of `rel`: [`CompiledQuery::mask_stride`]
    /// words, the first [`CompiledQuery::words_per_rel`] logical and the
    /// rest zero. Kernel-tier callers scan this row with
    /// [`crate::bitset::intersects`]; the zero padding makes the result
    /// identical to a scan of the logical mask.
    #[inline]
    pub fn neighbor_blocks(&self, rel: RelId) -> &[u64] {
        let base = rel.index() * self.mask_stride;
        &self.neighbor_words[base..base + self.mask_stride]
    }

    /// The neighbor mask of `rel` as a one-block [`BlockMask`] — only
    /// callable when [`CompiledQuery::mask_stride`] is at most
    /// [`BLOCK_WORDS`] (≤ [`BlockMask::CAPACITY`] relations), the regime
    /// plan-tree nodes operate in.
    #[inline]
    pub fn neighbor_block_mask(&self, rel: RelId) -> BlockMask {
        debug_assert!(
            self.mask_stride <= BLOCK_WORDS,
            "neighbor_block_mask requires <= {} relations",
            BlockMask::CAPACITY
        );
        BlockMask::from_words(self.neighbor_blocks(rel))
    }

    /// Whether `rel` joins any relation marked in `placed` (a
    /// [`CompiledQuery::words_per_rel`]-word bitset): a branch-light
    /// word-AND scan, the compiled form of the validity connectivity
    /// test.
    #[inline]
    pub fn connects(&self, rel: RelId, placed: &[u64]) -> bool {
        debug_assert_eq!(placed.len(), self.words_per_rel);
        let mask = self.neighbor_mask(rel);
        let mut hit = 0u64;
        for (m, p) in mask.iter().zip(placed) {
            hit |= m & p;
        }
        hit != 0
    }

    /// Blocked form of [`CompiledQuery::connects`]: `placed` is a
    /// [`CompiledQuery::mask_stride`]-word bitset (padding words zero)
    /// and the test runs through the word-count-specialized
    /// [`crate::bitset::intersects`] kernel.
    #[inline]
    pub fn connects_blocks(&self, rel: RelId, placed: &[u64]) -> bool {
        debug_assert_eq!(placed.len(), self.mask_stride);
        bitset::intersects(self.neighbor_blocks(rel), placed)
    }

    /// Set `rel`'s bit in a placed-set mask.
    #[inline]
    pub fn set_placed(&self, placed: &mut [u64], rel: RelId) {
        placed[rel.index() / 64] |= 1u64 << (rel.index() % 64);
    }

    /// The single neighbor-mask word of `rel` — only callable when
    /// [`CompiledQuery::words_per_rel`] is 1 (≤ 64 relations), where the
    /// whole placed set fits one register and the validity hot loop can
    /// keep it out of memory entirely (the single-word fast path of the
    /// bitset validity checker; [`CompiledQuery::connects`] is the
    /// general form).
    #[inline]
    pub fn neighbor_word(&self, rel: RelId) -> u64 {
        debug_assert_eq!(self.words_per_rel, 1);
        self.neighbor_words[rel.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::predicate::JoinEdge;

    fn triangle_plus() -> Query {
        QueryBuilder::new()
            .relation("a", 100)
            .relation("b", 200)
            .relation("c", 50)
            .relation("d", 10)
            .join_on_distincts("a", "b", 40.0, 80.0)
            .join_on_distincts("b", "c", 30.0, 20.0)
            .join_on_distincts("a", "c", 10.0, 15.0)
            .join_on_distincts("a", "b", 5.0, 7.0) // parallel edge
            .build()
            .unwrap()
    }

    #[test]
    fn slots_mirror_incident_order_and_stats() {
        let q = triangle_plus();
        let cq = CompiledQuery::new(&q);
        let g = q.graph();
        for r in q.rel_ids() {
            let slots = cq.slot_range(r);
            let incident = g.incident(r);
            assert_eq!(slots.len(), incident.len());
            for (s, &eid) in slots.zip(incident) {
                let e = g.edge(eid);
                assert_eq!(cq.slot_edge(s), eid);
                assert_eq!(cq.slot_other(s), e.other(r).unwrap());
                assert_eq!(cq.slot_selectivity(s).to_bits(), e.selectivity.to_bits());
                assert_eq!(
                    cq.slot_inner_distinct(s).to_bits(),
                    e.distinct_on(r).unwrap().to_bits()
                );
                let other = e.other(r).unwrap();
                assert_eq!(cq.slot_other_side(s), usize::from(e.b == other));
            }
        }
    }

    #[test]
    fn edge_soa_and_cardinalities_match() {
        let q = triangle_plus();
        let cq = CompiledQuery::new(&q);
        for (i, e) in q.graph().edges().iter().enumerate() {
            let eid = EdgeId(i as u32);
            assert_eq!(cq.edge_a(eid), e.a);
            assert_eq!(cq.edge_b(eid), e.b);
            assert_eq!(cq.edge_selectivity(eid).to_bits(), e.selectivity.to_bits());
            assert_eq!(cq.edge_distinct(eid), [e.distinct_a, e.distinct_b]);
        }
        for r in q.rel_ids() {
            assert_eq!(cq.cardinality(r).to_bits(), q.cardinality(r).to_bits());
            assert_eq!(cq.degree(r), q.graph().degree(r));
        }
    }

    #[test]
    fn neighbor_bitsets_match_joined() {
        let q = triangle_plus();
        let cq = CompiledQuery::new(&q);
        for a in q.rel_ids() {
            for b in q.rel_ids() {
                let bit = cq.neighbor_mask(a)[b.index() / 64] & (1u64 << (b.index() % 64)) != 0;
                assert_eq!(bit, q.graph().joined(a, b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn connects_matches_scalar_membership() {
        let q = triangle_plus();
        let cq = CompiledQuery::new(&q);
        let mut placed = vec![0u64; cq.words_per_rel()];
        assert!(!cq.connects(RelId(0), &placed));
        cq.set_placed(&mut placed, RelId(3)); // isolated relation
        assert!(!cq.connects(RelId(0), &placed));
        cq.set_placed(&mut placed, RelId(2));
        assert!(cq.connects(RelId(0), &placed));
        assert!(cq.connects(RelId(1), &placed));
        assert!(!cq.connects(RelId(3), &placed), "d has no neighbors");
    }

    #[test]
    fn blocked_rows_are_padded_with_zeros_and_agree_with_logical() {
        for n in [3usize, 63, 64, 65, 127, 129, 256, 257, 300] {
            let edges: Vec<JoinEdge> = (1..n)
                .map(|i| JoinEdge::from_distincts(0u32, i as u32, 10.0, 10.0))
                .collect();
            let g = JoinGraph::new(n, edges);
            let cq = CompiledQuery::from_graph(&g, vec![100.0; n]);
            assert_eq!(
                cq.mask_stride(),
                crate::bitset::stride_for_relations(n),
                "n = {n}"
            );
            let mut placed_logical = vec![0u64; cq.words_per_rel()];
            let mut placed_blocks = vec![0u64; cq.mask_stride()];
            for probe in [0usize, 1, n / 2, n - 1] {
                cq.set_placed(&mut placed_logical, RelId(probe as u32));
                cq.set_placed(&mut placed_blocks, RelId(probe as u32));
            }
            for r in 0..n {
                let rel = RelId(r as u32);
                let row = cq.neighbor_blocks(rel);
                assert_eq!(row[..cq.words_per_rel()], *cq.neighbor_mask(rel));
                assert!(
                    row[cq.words_per_rel()..].iter().all(|&w| w == 0),
                    "padding words must stay zero (n = {n}, rel {r})"
                );
                assert_eq!(
                    cq.connects(rel, &placed_logical),
                    cq.connects_blocks(rel, &placed_blocks),
                    "n = {n}, rel {r}"
                );
            }
            if n <= 256 {
                let bm = cq.neighbor_block_mask(RelId(0));
                for b in 0..n {
                    assert_eq!(bm.test(b), g.joined(RelId(0), RelId(b as u32)));
                }
            }
        }
    }

    #[test]
    fn slot_records_mirror_scalar_accessors() {
        let q = triangle_plus();
        let cq = CompiledQuery::new(&q);
        for r in q.rel_ids() {
            let recs = cq.slot_records(r);
            for (rec, s) in recs.iter().zip(cq.slot_range(r)) {
                assert_eq!(rec.other, cq.slot_other(s));
                assert_eq!(rec.sel.to_bits(), cq.slot_selectivity(s).to_bits());
                assert_eq!(
                    rec.inner_distinct.to_bits(),
                    cq.slot_inner_distinct(s).to_bits()
                );
                assert_eq!(usize::from(rec.other_side), cq.slot_other_side(s));
            }
        }
    }

    #[test]
    fn wide_graphs_span_multiple_words() {
        // 130 relations: a star around relation 0, so bitsets need 3 words.
        let n = 130usize;
        let edges: Vec<JoinEdge> = (1..n)
            .map(|i| JoinEdge::from_distincts(0u32, i as u32, 10.0, 10.0))
            .collect();
        let g = JoinGraph::new(n, edges);
        let cq = CompiledQuery::from_graph(&g, vec![100.0; n]);
        assert_eq!(cq.words_per_rel(), 3);
        assert_eq!(cq.degree(RelId(0)), n - 1);
        let mut placed = vec![0u64; 3];
        cq.set_placed(&mut placed, RelId(129));
        assert!(cq.connects(RelId(0), &placed));
        assert!(!cq.connects(RelId(64), &placed), "spokes are not joined");
        cq.set_placed(&mut placed, RelId(0));
        assert!(cq.connects(RelId(64), &placed));
    }
}
