//! Algorithms R and T of the KBZ hierarchy.

use ljqo_catalog::{Query, RelId};
use ljqo_cost::Evaluator;
use ljqo_plan::JoinOrder;

use super::chain::{merge_chains, normalize_front, Module};
use super::mst::RootedTree;
use super::KbzHeuristic;

/// Algorithm R: the rank-optimal join order for a rooted query tree.
///
/// Bottom-up over the tree: each subtree is reduced to a rank-ascending
/// chain of modules; the chains of a node's children are merged by rank,
/// the node's own module is prepended, and rank inversions at the front
/// are normalized away by merging (see the chain module). Flattening the
/// root's chain yields the order. `O(N log N)` for bounded-degree trees.
pub fn algorithm_r(h: &KbzHeuristic, query: &Query, tree: &RootedTree) -> JoinOrder {
    algorithm_r_with_cost(h, query, tree).0
}

/// Algorithm R, also returning the order's cost under KBZ's **internal**
/// ASI cost model (`C(S₁S₂) = C(S₁) + T(S₁)·C(S₂)`). Algorithm T compares
/// roots by this internal cost — not by the optimizer's real cost model —
/// which is exactly why the paper finds KBZ's single produced state
/// underwhelming: the ASI surrogate and the real model disagree.
pub fn algorithm_r_with_cost(
    h: &KbzHeuristic,
    query: &Query,
    tree: &RootedTree,
) -> (JoinOrder, f64) {
    let chain = chain_for(h, query, tree, tree.root);
    // Fold the sequence recurrences over the chain: the root module has
    // C = 0 and T = n_root, so the fold accumulates Σ T(prefix)·C(module).
    let mut asi_cost = 0.0f64;
    let mut t_running = 1.0f64;
    for module in &chain {
        asi_cost += t_running * module.c;
        t_running *= module.t;
    }
    let rels: Vec<RelId> = chain.into_iter().flat_map(|m| m.rels).collect();
    (JoinOrder::new(rels), asi_cost)
}

fn chain_for(h: &KbzHeuristic, query: &Query, tree: &RootedTree, v: RelId) -> Vec<Module> {
    let child_chains: Vec<Vec<Module>> = tree.children[v.index()]
        .iter()
        .map(|&c| chain_for(h, query, tree, c))
        .collect();
    let merged = merge_chains(child_chains);

    let module_v = match tree.parent[v.index()] {
        None => {
            // The root contributes the initial cardinality but is never an
            // inner operand; a zero cost factor makes its rank -inf so it
            // stays first under normalization.
            Module::leaf(v, query.cardinality(v), 0.0)
        }
        Some((_, sel)) => {
            let t = sel * query.cardinality(v);
            let c = h.probe_cost + h.output_cost * t;
            Module::leaf(v, t, c)
        }
    };
    let mut chain = Vec::with_capacity(1 + merged.len());
    chain.push(module_v);
    chain.extend(merged);
    normalize_front(&mut chain);
    chain
}

/// Algorithm T: run algorithm R for every root, pick the root whose order
/// is cheapest under KBZ's **internal ASI cost**, and evaluate only that
/// single winner under the real cost model — KBZ "directly generates a
/// finite number of solutions": exactly one per join graph.
///
/// Charges `N` budget units per root for the R run plus one unit for the
/// final evaluation; stops early when the budget runs out.
pub fn algorithm_t(
    h: &KbzHeuristic,
    ev: &mut Evaluator<'_>,
    tree: &super::mst::UnrootedTree,
) -> Option<JoinOrder> {
    let n = tree.members.len() as u64;
    let mut best: Option<(JoinOrder, f64)> = None;
    for &root in &tree.members {
        if ev.exhausted() {
            break;
        }
        ev.charge(n);
        let rooted = tree.rooted_at(root);
        let (order, asi_cost) = algorithm_r_with_cost(h, ev.query(), &rooted);
        if best.as_ref().is_none_or(|&(_, bc)| asi_cost < bc) {
            best = Some((order, asi_cost));
        }
    }
    let (order, _) = best?;
    ev.cost(&order);
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kbz::mst::{MstWeight, UnrootedTree};
    use ljqo_catalog::QueryBuilder;
    use ljqo_cost::MemoryCostModel;
    use ljqo_plan::validity::is_valid;

    /// A tree-shaped query (no cycles), so the spanning tree IS the join
    /// graph and algorithm R's precedence constraints are exact.
    fn tree_query() -> Query {
        //        a(1000)
        //       /    \
        //   b(50)    c(2000)
        //    |
        //   d(5000)
        QueryBuilder::new()
            .relation("a", 1000)
            .relation("b", 50)
            .relation("c", 2000)
            .relation("d", 5000)
            .join("a", "b", 0.02)
            .join("a", "c", 0.0005)
            .join("b", "d", 0.0002)
            .build()
            .unwrap()
    }

    #[test]
    fn algorithm_r_respects_tree_precedence() {
        let q = tree_query();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let t = UnrootedTree::minimum_spanning_tree(&q, &comp, MstWeight::Selectivity);
        let h = KbzHeuristic::default();
        for &root in &comp {
            let rooted = t.rooted_at(root);
            let order = algorithm_r(&h, &q, &rooted);
            assert_eq!(order.at(0), root, "root must come first");
            assert!(is_valid(q.graph(), order.rels()), "root {root}: {order}");
            // Tree precedence: each relation appears after its parent.
            for &r in order.rels() {
                if let Some((p, _)) = rooted.parent[r.index()] {
                    assert!(
                        order.position(p).unwrap() < order.position(r).unwrap(),
                        "parent {p} must precede {r} in {order}"
                    );
                }
            }
        }
    }

    #[test]
    fn algorithm_r_is_optimal_among_tree_orders_with_asi_cost() {
        // Verify the ASI optimality claim by brute force on the tree
        // query: among all orders rooted at `root` respecting tree
        // precedence, algorithm R's order minimizes the ASI cost
        // Σ |outer_i| · g(inner_i).
        let q = tree_query();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let t = UnrootedTree::minimum_spanning_tree(&q, &comp, MstWeight::Selectivity);
        let h = KbzHeuristic::default();

        let asi_cost = |rooted: &RootedTree, order: &[RelId]| -> f64 {
            let mut card = q.cardinality(order[0]);
            let mut total = 0.0;
            for &r in &order[1..] {
                let (_, sel) = rooted.parent[r.index()].unwrap();
                let tr = sel * q.cardinality(r);
                total += card * (h.probe_cost + h.output_cost * tr);
                card *= tr;
            }
            total
        };

        for &root in &comp {
            let rooted = t.rooted_at(root);
            let r_order = algorithm_r(&h, &q, &rooted);
            let r_cost = asi_cost(&rooted, r_order.rels());

            // Enumerate all precedence-respecting orders rooted at root.
            let rest: Vec<RelId> = comp.iter().copied().filter(|&r| r != root).collect();
            let mut best = f64::INFINITY;
            permute(&rest, &mut Vec::new(), &mut |perm| {
                let mut order = vec![root];
                order.extend_from_slice(perm);
                let ok = order.iter().enumerate().all(|(i, &r)| {
                    rooted.parent[r.index()].is_none_or(|(p, _)| order[..i].contains(&p))
                });
                if ok {
                    best = best.min(asi_cost(&rooted, &order));
                }
            });
            assert!(
                r_cost <= best + best.abs() * 1e-9,
                "root {root}: algorithm R cost {r_cost} > brute-force {best}"
            );
        }
    }

    fn permute<F: FnMut(&[RelId])>(rest: &[RelId], acc: &mut Vec<RelId>, f: &mut F) {
        if rest.is_empty() {
            f(acc);
            return;
        }
        for (i, &r) in rest.iter().enumerate() {
            let mut next: Vec<RelId> = rest.to_vec();
            next.remove(i);
            acc.push(r);
            permute(&next, acc, f);
            acc.pop();
        }
    }

    #[test]
    fn algorithm_t_picks_the_asi_cheapest_root() {
        let q = tree_query();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let t = UnrootedTree::minimum_spanning_tree(&q, &comp, MstWeight::Selectivity);
        let model = MemoryCostModel::default();
        let h = KbzHeuristic::default();
        let mut ev = Evaluator::new(&q, &model);
        let best = algorithm_t(&h, &mut ev, &t).unwrap();
        // T produces exactly ONE state and it is the ASI-cheapest root's.
        assert_eq!(ev.n_evals(), 1);
        let best_asi = comp
            .iter()
            .map(|&root| algorithm_r_with_cost(&h, &q, &t.rooted_at(root)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(best, best_asi.0);
        for &root in &comp {
            let (_, asi) = algorithm_r_with_cost(&h, &q, &t.rooted_at(root));
            assert!(asi >= best_asi.1 - best_asi.1.abs() * 1e-12);
        }
    }

    #[test]
    fn asi_cost_is_positive_and_root_dependent() {
        let q = tree_query();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let t = UnrootedTree::minimum_spanning_tree(&q, &comp, MstWeight::Selectivity);
        let h = KbzHeuristic::default();
        let costs: Vec<f64> = comp
            .iter()
            .map(|&root| algorithm_r_with_cost(&h, &q, &t.rooted_at(root)).1)
            .collect();
        assert!(costs.iter().all(|c| c.is_finite() && *c > 0.0));
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "some root must be better than another");
    }
}
