//! The KBZ heuristic (paper §4.2, after Krishnamurthy, Boral & Zaniolo,
//! VLDB 1986).
//!
//! A 3-level hierarchy:
//!
//! * **Algorithm R** ([`algorithm::algorithm_r`]) — given a *rooted* query
//!   tree, produce the optimal join order for that root by ordering
//!   relations by ascending *rank* under the adjacent-sequence-interchange
//!   (ASI) property, with chain normalization for rank inversions.
//! * **Algorithm T** ([`algorithm::algorithm_t`]) — given an unrooted query
//!   tree, run algorithm R for every choice of root and keep the order
//!   that is cheapest under KBZ's internal ASI cost, yielding a *single*
//!   state per join graph.
//! * **Algorithm G** ([`KbzHeuristic::generate`]) — given a general
//!   (possibly cyclic) join graph, pick a minimum spanning tree (edge
//!   weights per [`MstWeight`]; the paper's Table 2 finds join selectivity
//!   best) and hand it to algorithm T.
//!
//! ## Rank under the hash-join cost model
//!
//! The ASI theory requires per-join costs of the form `|outer| · g(inner)`.
//! Our hash join costs `c_build·n + c_probe·|outer| + c_out·|outer|·s·n`;
//! the build term does not depend on the outer and is the same for every
//! position of the relation in the order, so KBZ's ranking uses the
//! outer-proportional part: `g_i = c_probe + c_out·s_i·n_i`, with size
//! factor `T_i = s_i·n_i`. The single state KBZ proposes is then judged by
//! the optimizer under the *real* cost model — the gap between the ASI
//! surrogate and the real model is exactly why the paper finds KBZ
//! underwhelming, and why it stresses that its own methods do not depend
//! on a restricted cost-function form.

pub mod algorithm;
mod chain;
mod mst;

pub use mst::{MstWeight, RootedTree, UnrootedTree};

use ljqo_catalog::RelId;
use ljqo_cost::Evaluator;
use ljqo_plan::JoinOrder;

/// The KBZ heuristic: algorithm G over a configurable spanning-tree weight
/// and rank cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KbzHeuristic {
    /// Spanning-tree edge weight (Table 2 compares criteria 3/4/5).
    pub weight: MstWeight,
    /// Per-outer-tuple probe cost used in the rank (`c_probe`).
    pub probe_cost: f64,
    /// Per-result-tuple output cost used in the rank (`c_out`).
    pub output_cost: f64,
}

impl Default for KbzHeuristic {
    /// Join selectivity weighting — the best criterion in Table 2, and the
    /// weighting suggested in the original KBZ paper.
    fn default() -> Self {
        KbzHeuristic {
            weight: MstWeight::Selectivity,
            probe_cost: 1.0,
            output_cost: 1.0,
        }
    }
}

impl KbzHeuristic {
    /// Create a heuristic with the given spanning-tree weight.
    pub fn new(weight: MstWeight) -> Self {
        KbzHeuristic {
            weight,
            ..KbzHeuristic::default()
        }
    }

    /// Algorithm G: spanning tree, then algorithm T.
    ///
    /// Budget accounting (one unit = `O(N)` work): `N` units for the
    /// spanning tree, and per root `N` units for algorithm R plus one unit
    /// for evaluating the produced order — totalling the `O(N²)` the paper
    /// charges KBZ for generating a single state. Stops early (returning
    /// the best order found so far) if the evaluator's budget runs out;
    /// returns `None` only if no root was completed.
    pub fn generate(&self, ev: &mut Evaluator<'_>, component: &[RelId]) -> Option<JoinOrder> {
        if component.len() == 1 {
            ev.charge(1);
            let order = JoinOrder::new(component.to_vec());
            ev.cost(&order);
            return Some(order);
        }
        let n = component.len() as u64;
        ev.charge(n);
        let tree = UnrootedTree::minimum_spanning_tree(ev.query(), component, self.weight);
        algorithm::algorithm_t(self, ev, &tree)
    }

    /// Like [`KbzHeuristic::generate`], but yield the order produced for
    /// **every** root of algorithm T (ordered by ascending real cost, one
    /// evaluation each) — this is how the IKI and KBI combinations obtain
    /// a *set* of start states from KBZ, interpreting the paper's plural
    /// "start states". Charges `N` per root plus one evaluation per root.
    pub fn generate_all_roots(
        &self,
        ev: &mut Evaluator<'_>,
        component: &[RelId],
    ) -> Vec<JoinOrder> {
        if component.len() == 1 {
            ev.charge(1);
            let order = JoinOrder::new(component.to_vec());
            ev.cost(&order);
            return vec![order];
        }
        let n = component.len() as u64;
        ev.charge(n);
        let tree = UnrootedTree::minimum_spanning_tree(ev.query(), component, self.weight);
        let mut states: Vec<(JoinOrder, f64)> = Vec::new();
        for &root in tree.members.clone().iter() {
            if ev.exhausted() {
                break;
            }
            ev.charge(n);
            let rooted = tree.rooted_at(root);
            let order = algorithm::algorithm_r(self, ev.query(), &rooted);
            let cost = ev.cost(&order);
            states.push((order, cost));
        }
        states.sort_by(|a, b| a.1.total_cmp(&b.1));
        states.into_iter().map(|(o, _)| o).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::{Query, QueryBuilder};
    use ljqo_cost::MemoryCostModel;
    use ljqo_plan::validity::is_valid;

    fn cyclic_query() -> Query {
        QueryBuilder::new()
            .relation("a", 1000)
            .relation("b", 100)
            .relation("c", 10)
            .relation("d", 500)
            .join("a", "b", 0.01)
            .join("b", "c", 0.05)
            .join("c", "d", 0.002)
            .join("d", "a", 0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn generate_produces_valid_order() {
        let q = cyclic_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&q, &model);
        let comp: Vec<RelId> = q.rel_ids().collect();
        let order = KbzHeuristic::default().generate(&mut ev, &comp).unwrap();
        assert_eq!(order.len(), 4);
        assert!(is_valid(q.graph(), order.rels()));
    }

    #[test]
    fn generate_charges_quadratic_budget() {
        let q = cyclic_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&q, &model);
        let comp: Vec<RelId> = q.rel_ids().collect();
        KbzHeuristic::default().generate(&mut ev, &comp).unwrap();
        // MST: 4 units; per root (4 roots): 4 units; one final evaluation.
        assert_eq!(ev.used(), 4 + 4 * 4 + 1);
    }

    #[test]
    fn budget_exhaustion_stops_early() {
        let q = cyclic_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        // Enough for the MST and two roots only.
        let mut ev = Evaluator::with_budget(&q, &model, 14);
        let order = KbzHeuristic::default().generate(&mut ev, &comp);
        assert!(order.is_some(), "at least one root should complete");
        assert!(ev.used() <= 19);
    }

    #[test]
    fn singleton_component() {
        let q = cyclic_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&q, &model);
        let order = KbzHeuristic::default()
            .generate(&mut ev, &[RelId(2)])
            .unwrap();
        assert_eq!(order.rels(), &[RelId(2)]);
    }

    #[test]
    fn all_weights_work_on_cyclic_graphs() {
        let q = cyclic_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        for w in [
            MstWeight::Selectivity,
            MstWeight::IntermediateSize,
            MstWeight::Rank,
        ] {
            let mut ev = Evaluator::new(&q, &model);
            let order = KbzHeuristic::new(w).generate(&mut ev, &comp).unwrap();
            assert!(is_valid(q.graph(), order.rels()), "weight {w:?}");
        }
    }
}
