//! Rank modules and chain operations for algorithm R.
//!
//! Under the ASI property, the optimal order for a rooted tree sorts
//! relations by ascending *rank*. Precedence constraints (a child cannot
//! precede its tree parent) are handled by *normalization*: when a parent
//! has higher rank than the first module of its subtree chain, the two are
//! merged into a compound module whose aggregate `T` and `C` follow the
//! sequence recurrences `T(AB) = T(A)·T(B)`, `C(AB) = C(A) + T(A)·C(B)`.

use ljqo_catalog::RelId;

/// A (possibly compound) sequence of relations with aggregate size factor
/// `T` and cost factor `C`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Module {
    /// The relations, in their fixed internal order.
    pub rels: Vec<RelId>,
    /// Aggregate size factor `T` (product of `s_i·n_i`).
    pub t: f64,
    /// Aggregate cost factor `C` (per outer tuple).
    pub c: f64,
}

impl Module {
    /// A single-relation module.
    pub fn leaf(rel: RelId, t: f64, c: f64) -> Self {
        Module {
            rels: vec![rel],
            t,
            c,
        }
    }

    /// The rank `(T − 1) / C`. Modules with `C = 0` (the root sentinel)
    /// rank below everything so they are never displaced.
    pub fn rank(&self) -> f64 {
        if self.c <= 0.0 {
            f64::NEG_INFINITY
        } else {
            (self.t - 1.0) / self.c
        }
    }

    /// Absorb `next`, producing the compound module `self · next`.
    pub fn absorb(&mut self, next: Module) {
        self.c += self.t * next.c;
        self.t *= next.t;
        self.rels.extend(next.rels);
    }
}

/// Merge rank-ascending chains into one rank-ascending chain (k-way merge).
pub(crate) fn merge_chains(mut chains: Vec<Vec<Module>>) -> Vec<Module> {
    // Simple repeated two-way merge; chains are short (≤ N modules total).
    let mut result = chains.pop().unwrap_or_default();
    for chain in chains {
        result = merge_two(result, chain);
    }
    result
}

fn merge_two(a: Vec<Module>, b: Vec<Module>) -> Vec<Module> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                if x.rank() <= y.rank() {
                    out.push(ai.next().unwrap());
                } else {
                    out.push(bi.next().unwrap());
                }
            }
            (Some(_), None) => out.push(ai.next().unwrap()),
            (None, Some(_)) => out.push(bi.next().unwrap()),
            (None, None) => break,
        }
    }
    out
}

/// Normalize the front of a chain whose head is a freshly prepended parent
/// module: while the head outranks its successor, merge them. The tail is
/// already ascending, and a merged module's rank lies between its parts'
/// ranks, so front-merging restores global ascending order.
pub(crate) fn normalize_front(chain: &mut Vec<Module>) {
    while chain.len() >= 2 && chain[0].rank() > chain[1].rank() {
        let next = chain.remove(1);
        chain[0].absorb(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: u32, t: f64, c: f64) -> Module {
        Module::leaf(RelId(id), t, c)
    }

    #[test]
    fn rank_formula() {
        let a = m(0, 3.0, 2.0);
        assert!((a.rank() - 1.0).abs() < 1e-12);
        let root = m(1, 5.0, 0.0);
        assert_eq!(root.rank(), f64::NEG_INFINITY);
    }

    #[test]
    fn absorb_follows_sequence_recurrences() {
        let mut a = m(0, 2.0, 3.0);
        let b = m(1, 4.0, 5.0);
        a.absorb(b);
        assert_eq!(a.t, 8.0); // 2·4
        assert_eq!(a.c, 13.0); // 3 + 2·5
        assert_eq!(a.rels, vec![RelId(0), RelId(1)]);
    }

    #[test]
    fn merged_rank_lies_between_parts() {
        // rank(A) = 1.0, rank(B) = 0.2
        let mut a = m(0, 3.0, 2.0);
        let b = m(1, 2.0, 5.0);
        let (ra, rb) = (a.rank(), b.rank());
        a.absorb(b);
        let rab = a.rank();
        assert!(rab <= ra && rab >= rb, "rank({rab}) outside [{rb},{ra}]");
    }

    #[test]
    fn merge_chains_keeps_ascending_order() {
        let c1 = vec![m(0, 1.1, 1.0), m(1, 3.0, 1.0)];
        let c2 = vec![m(2, 1.5, 1.0), m(3, 5.0, 1.0)];
        let merged = merge_chains(vec![c1, c2]);
        let ranks: Vec<f64> = merged.iter().map(Module::rank).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "{ranks:?}");
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn normalize_front_merges_inversions() {
        // Parent with rank 2.0 prepended to chain with ranks [0.5, 1.0].
        let parent = m(0, 5.0, 2.0); // rank 2.0
        let mut chain = vec![parent, m(1, 1.5, 1.0), m(2, 3.0, 2.0)];
        normalize_front(&mut chain);
        // Head must no longer outrank its successor.
        assert!(chain[0].rank() <= chain.get(1).map_or(f64::INFINITY, Module::rank));
        // All three relations survive, in parent-first order.
        let rels: Vec<RelId> = chain.iter().flat_map(|md| md.rels.clone()).collect();
        assert_eq!(rels[0], RelId(0));
        assert_eq!(rels.len(), 3);
    }

    #[test]
    fn root_sentinel_never_merges() {
        let root = m(0, 10.0, 0.0);
        let mut chain = vec![root, m(1, 1.5, 1.0)];
        normalize_front(&mut chain);
        assert_eq!(chain.len(), 2);
    }
}
