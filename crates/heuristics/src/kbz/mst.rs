//! Spanning-tree selection for algorithm G.
//!
//! The paper models spanning-tree choice "by a process similar to that
//! used in the augmentation heuristic": grow the tree from the smallest
//! relation, repeatedly adding the frontier edge with the smallest weight.
//! This is Prim's algorithm with (possibly direction-dependent) weights
//! corresponding to augmentation criteria 3, 4 and 5.

use ljqo_catalog::{JoinEdge, Query, RelId};

/// Edge weights for the minimum spanning tree (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MstWeight {
    /// Criterion 3: the join selectivity `J_ij` (the paper's and KBZ's
    /// recommended weighting).
    Selectivity,
    /// Criterion 4: the intermediate size `N_i·N_j·J_ij`.
    IntermediateSize,
    /// Criterion 5: the rank `(N_i·N_j·J_ij − 1)/(0.5·N_i·(N_j/D_j))`.
    Rank,
}

impl MstWeight {
    /// The paper's 1-based augmentation-criterion number this weight
    /// corresponds to.
    pub fn criterion_number(self) -> usize {
        match self {
            MstWeight::Selectivity => 3,
            MstWeight::IntermediateSize => 4,
            MstWeight::Rank => 5,
        }
    }

    /// Weight of adding `to` to a tree already containing `from` via `e`.
    fn weight(self, query: &Query, e: &JoinEdge, from: RelId, to: RelId) -> f64 {
        let n_i = query.cardinality(from);
        let n_j = query.cardinality(to);
        match self {
            MstWeight::Selectivity => e.selectivity,
            MstWeight::IntermediateSize => n_i * n_j * e.selectivity,
            MstWeight::Rank => {
                let d_j = e.distinct_on(to).unwrap_or(1.0);
                let denom = (0.5 * n_i * (n_j / d_j)).max(f64::MIN_POSITIVE);
                (n_i * n_j * e.selectivity - 1.0) / denom
            }
        }
    }
}

/// An unrooted spanning tree of one join-graph component, ready to be
/// rooted at any member (algorithm T iterates over all roots).
///
/// Each tree edge stores the **combined** selectivity of all join
/// predicates between its endpoints: when the child joins, every predicate
/// to its tree parent applies. Non-tree predicates are invisible to KBZ's
/// ranking (inherent to the spanning-tree reduction); algorithm T's final
/// evaluation under the real cost model sees them.
#[derive(Debug, Clone)]
pub struct UnrootedTree {
    /// Members of the component.
    pub members: Vec<RelId>,
    /// `adj[r]` lists `(neighbor, combined selectivity)` pairs; indexed by
    /// relation id, empty for non-members.
    adj: Vec<Vec<(RelId, f64)>>,
}

impl UnrootedTree {
    /// Prim's algorithm from the smallest relation of `component`.
    ///
    /// Panics if `component` has fewer than 2 relations or is not
    /// connected in `query`'s join graph.
    pub fn minimum_spanning_tree(query: &Query, component: &[RelId], weight: MstWeight) -> Self {
        assert!(component.len() >= 2, "MST needs at least two relations");
        let n_rel = query.n_relations();
        let mut in_component = vec![false; n_rel];
        for &r in component {
            in_component[r.index()] = true;
        }
        let start = component
            .iter()
            .copied()
            .min_by(|&a, &b| {
                query
                    .cardinality(a)
                    .total_cmp(&query.cardinality(b))
                    .then(a.cmp(&b))
            })
            .unwrap();

        let mut in_tree = vec![false; n_rel];
        in_tree[start.index()] = true;
        let mut adj = vec![Vec::new(); n_rel];
        let graph = query.graph();
        for _ in 1..component.len() {
            // Scan the cut for the lightest crossing edge. O(N·E) overall;
            // components have ~100 relations so this stays trivial, and the
            // optimizer charges KBZ's budget independently of our concrete
            // implementation speed.
            let mut best: Option<(f64, RelId, RelId)> = None;
            for &from in component.iter().filter(|&&r| in_tree[r.index()]) {
                for &eid in graph.incident(from) {
                    let e = graph.edge(eid);
                    let Some(to) = e.other(from) else { continue };
                    if !in_component[to.index()] || in_tree[to.index()] {
                        continue;
                    }
                    let w = weight.weight(query, e, from, to);
                    let better = match best {
                        None => true,
                        Some((bw, _, bto)) => w < bw || (w == bw && to < bto),
                    };
                    if better {
                        best = Some((w, from, to));
                    }
                }
            }
            let (_, from, to) = best.expect("component is not connected");
            let sel = graph
                .selectivity_between(from, to)
                .expect("edge endpoints must be joined");
            adj[from.index()].push((to, sel));
            adj[to.index()].push((from, sel));
            in_tree[to.index()] = true;
        }
        UnrootedTree {
            members: component.to_vec(),
            adj,
        }
    }

    /// Tree neighbors of `rel`.
    pub fn neighbors(&self, rel: RelId) -> &[(RelId, f64)] {
        &self.adj[rel.index()]
    }

    /// Root the tree at `root` (BFS), yielding parent pointers and the
    /// per-node selectivity to its parent.
    pub fn rooted_at(&self, root: RelId) -> RootedTree {
        let n_rel = self.adj.len();
        let mut parent = vec![None; n_rel];
        let mut children = vec![Vec::new(); n_rel];
        let mut visited = vec![false; n_rel];
        visited[root.index()] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        let mut bfs_order = vec![root];
        while let Some(v) = queue.pop_front() {
            for &(w, sel) in &self.adj[v.index()] {
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    parent[w.index()] = Some((v, sel));
                    children[v.index()].push(w);
                    bfs_order.push(w);
                    queue.push_back(w);
                }
            }
        }
        debug_assert_eq!(bfs_order.len(), self.members.len());
        RootedTree {
            root,
            parent,
            children,
            bfs_order,
        }
    }
}

/// A spanning tree rooted at a specific relation, input to algorithm R.
#[derive(Debug, Clone)]
pub struct RootedTree {
    /// The root (the first relation of any order for this tree).
    pub root: RelId,
    /// `(parent, selectivity to parent)` per relation id; `None` for the
    /// root and non-members.
    pub parent: Vec<Option<(RelId, f64)>>,
    /// Children lists per relation id.
    pub children: Vec<Vec<RelId>>,
    /// Members in BFS order from the root.
    pub bfs_order: Vec<RelId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;

    fn square() -> Query {
        // Cycle a-b-c-d-a; MST must drop exactly one edge.
        QueryBuilder::new()
            .relation("a", 100)
            .relation("b", 100)
            .relation("c", 100)
            .relation("d", 100)
            .join("a", "b", 0.01)
            .join("b", "c", 0.02)
            .join("c", "d", 0.03)
            .join("d", "a", 0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn selectivity_mst_drops_heaviest_edge() {
        let q = square();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let t = UnrootedTree::minimum_spanning_tree(&q, &comp, MstWeight::Selectivity);
        // The d-a edge (J = 0.5) must be excluded.
        assert!(!t.neighbors(RelId(3)).iter().any(|&(n, _)| n == RelId(0)));
        // Tree has exactly 3 edges (6 directed entries).
        let entries: usize = comp.iter().map(|&r| t.neighbors(r).len()).sum();
        assert_eq!(entries, 6);
    }

    #[test]
    fn tree_edges_store_combined_selectivity() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 10)
            .join("a", "b", 0.1)
            .join("a", "b", 0.5)
            .build()
            .unwrap();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let t = UnrootedTree::minimum_spanning_tree(&q, &comp, MstWeight::Selectivity);
        let &(_, sel) = &t.neighbors(RelId(0))[0];
        assert!((sel - 0.05).abs() < 1e-12);
    }

    #[test]
    fn rooting_reverses_cleanly_at_each_member() {
        let q = square();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let t = UnrootedTree::minimum_spanning_tree(&q, &comp, MstWeight::Selectivity);
        for &root in &comp {
            let rt = t.rooted_at(root);
            assert_eq!(rt.bfs_order.len(), 4);
            assert_eq!(rt.bfs_order[0], root);
            assert!(rt.parent[root.index()].is_none());
            // Every non-root member has a parent.
            for &m in &comp {
                if m != root {
                    assert!(rt.parent[m.index()].is_some());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn mst_of_singleton_panics() {
        let q = square();
        let _ = UnrootedTree::minimum_spanning_tree(&q, &[RelId(0)], MstWeight::Selectivity);
    }
}
