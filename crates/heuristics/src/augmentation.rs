//! The augmentation heuristic (paper §4.1).
//!
//! Build a permutation by picking a first relation and then repeatedly
//! choosing, from the relations that join with something already placed,
//! the one optimizing a criterion. One permutation is generated per choice
//! of first relation, so up to `N + 1` permutations are available; the
//! paper picks first relations in order of increasing size.

use ljqo_catalog::{Query, RelId};
use ljqo_plan::JoinOrder;

/// The five `chooseNext` criteria of paper §4.1 (Table 1).
///
/// In the paper's notation, `i` ranges over placed relations `S`, `j` over
/// candidates `T` that join with `S`; `N_k` is the (post-selection)
/// cardinality, `deg(k)` the join-graph degree, `J_ij` a join selectivity,
/// and `D_j` the distinct count in `j`'s join column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AugmentationCriterion {
    /// Criterion 1: `min(N_j)` — smallest cardinality first.
    MinCardinality,
    /// Criterion 2: `max(deg(j))` — highest join-graph degree first.
    MaxDegree,
    /// Criterion 3: `min(J_ij)` — smallest join selectivity for the next
    /// join. The paper's winner: it tends to maximize distinct values in
    /// intermediate results, keeping them small throughout.
    MinSelectivity,
    /// Criterion 4: `min(N_i·N_j·J_ij)` — smallest next intermediate.
    MinIntermediateSize,
    /// Criterion 5: `min((N_i·N_j·J_ij − 1)/(0.5·N_i·(N_j/D_j)))` —
    /// smallest KBZ-style rank.
    MinRank,
}

impl AugmentationCriterion {
    /// All five criteria, in the paper's numbering order.
    pub const ALL: [AugmentationCriterion; 5] = [
        AugmentationCriterion::MinCardinality,
        AugmentationCriterion::MaxDegree,
        AugmentationCriterion::MinSelectivity,
        AugmentationCriterion::MinIntermediateSize,
        AugmentationCriterion::MinRank,
    ];

    /// The paper's 1-based criterion number.
    pub fn number(self) -> usize {
        match self {
            AugmentationCriterion::MinCardinality => 1,
            AugmentationCriterion::MaxDegree => 2,
            AugmentationCriterion::MinSelectivity => 3,
            AugmentationCriterion::MinIntermediateSize => 4,
            AugmentationCriterion::MinRank => 5,
        }
    }

    /// Score of candidate `j`; **lower is better** for every criterion
    /// (criterion 2 negates the degree).
    ///
    /// For criteria involving a placed partner `i`, the score minimizes
    /// over the join edges between `j` and `S`, following the paper's
    /// `min` over `i ∈ S`.
    fn score(self, query: &Query, placed: &[bool], j: RelId) -> f64 {
        let graph = query.graph();
        match self {
            AugmentationCriterion::MinCardinality => query.cardinality(j),
            AugmentationCriterion::MaxDegree => -(graph.degree(j) as f64),
            _ => {
                let n_j = query.cardinality(j);
                let mut best = f64::INFINITY;
                for &eid in graph.incident(j) {
                    let e = graph.edge(eid);
                    let Some(i) = e.other(j) else { continue };
                    if !placed[i.index()] {
                        continue;
                    }
                    let n_i = query.cardinality(i);
                    let v = match self {
                        AugmentationCriterion::MinSelectivity => e.selectivity,
                        AugmentationCriterion::MinIntermediateSize => n_i * n_j * e.selectivity,
                        AugmentationCriterion::MinRank => {
                            let d_j = e.distinct_on(j).unwrap_or(1.0);
                            let denom = 0.5 * n_i * (n_j / d_j);
                            (n_i * n_j * e.selectivity - 1.0) / denom.max(f64::MIN_POSITIVE)
                        }
                        _ => unreachable!(),
                    };
                    best = best.min(v);
                }
                best
            }
        }
    }
}

/// The augmentation heuristic with a fixed `chooseNext` criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentationHeuristic {
    /// The `chooseNext` criterion.
    pub criterion: AugmentationCriterion,
}

impl Default for AugmentationHeuristic {
    /// Criterion 3 (minimum join selectivity), the paper's best.
    fn default() -> Self {
        AugmentationHeuristic {
            criterion: AugmentationCriterion::MinSelectivity,
        }
    }
}

impl AugmentationHeuristic {
    /// Create a heuristic with the given criterion.
    pub fn new(criterion: AugmentationCriterion) -> Self {
        AugmentationHeuristic { criterion }
    }

    /// First-relation choices for `component`, in order of increasing
    /// effective cardinality (ties broken by id), as the paper prescribes.
    pub fn first_relations(query: &Query, component: &[RelId]) -> Vec<RelId> {
        let mut rels = component.to_vec();
        rels.sort_by(|&a, &b| {
            query
                .cardinality(a)
                .total_cmp(&query.cardinality(b))
                .then(a.cmp(&b))
        });
        rels
    }

    /// Generate the permutation that starts at `first` (Figure 3 of the
    /// paper). Only relations joining with the placed set are considered,
    /// so the result is always a valid join order of the component.
    ///
    /// Panics if `first` is not in `component`. If the component is not
    /// connected the result covers only the part reachable from `first`
    /// (guarded by a debug assertion).
    pub fn generate(&self, query: &Query, component: &[RelId], first: RelId) -> JoinOrder {
        assert!(component.contains(&first), "{first} not in component");
        let n_rel = query.n_relations();
        let mut in_component = vec![false; n_rel];
        for &r in component {
            in_component[r.index()] = true;
        }
        let mut placed = vec![false; n_rel];
        let mut order = Vec::with_capacity(component.len());
        placed[first.index()] = true;
        order.push(first);

        // Frontier of candidates joined to the placed set.
        let mut in_frontier = vec![false; n_rel];
        let mut frontier: Vec<RelId> = Vec::new();
        let extend =
            |r: RelId, frontier: &mut Vec<RelId>, in_frontier: &mut Vec<bool>, placed: &[bool]| {
                for &eid in query.graph().incident(r) {
                    if let Some(o) = query.graph().edge(eid).other(r) {
                        if in_component[o.index()] && !placed[o.index()] && !in_frontier[o.index()]
                        {
                            in_frontier[o.index()] = true;
                            frontier.push(o);
                        }
                    }
                }
            };
        extend(first, &mut frontier, &mut in_frontier, &placed);

        while !frontier.is_empty() {
            // chooseNext: argmin of the criterion score over the frontier,
            // ties broken by relation id for determinism.
            let mut best_idx = 0;
            let mut best_score = f64::INFINITY;
            let mut best_rel = RelId(u32::MAX);
            for (idx, &j) in frontier.iter().enumerate() {
                let s = self.criterion.score(query, &placed, j);
                if s < best_score || (s == best_score && j < best_rel) {
                    best_score = s;
                    best_rel = j;
                    best_idx = idx;
                }
            }
            let next = frontier.swap_remove(best_idx);
            in_frontier[next.index()] = false;
            placed[next.index()] = true;
            order.push(next);
            extend(next, &mut frontier, &mut in_frontier, &placed);
        }
        debug_assert_eq!(order.len(), component.len(), "component not connected");
        JoinOrder::new(order)
    }

    /// Generate all permutations for a component, one per first relation,
    /// in the paper's increasing-size order.
    pub fn generate_all(&self, query: &Query, component: &[RelId]) -> Vec<JoinOrder> {
        Self::first_relations(query, component)
            .into_iter()
            .map(|first| self.generate(query, component, first))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;
    use ljqo_plan::validity::is_valid;

    /// Chain a(1000) - b(10) - c(500) - d(20), varying selectivities.
    fn chain() -> Query {
        QueryBuilder::new()
            .relation("a", 1000)
            .relation("b", 10)
            .relation("c", 500)
            .relation("d", 20)
            .join("a", "b", 0.1)
            .join("b", "c", 0.001)
            .join("c", "d", 0.05)
            .build()
            .unwrap()
    }

    fn comp(q: &Query) -> Vec<RelId> {
        q.rel_ids().collect()
    }

    #[test]
    fn first_relations_sorted_by_size() {
        let q = chain();
        let firsts = AugmentationHeuristic::first_relations(&q, &comp(&q));
        let cards: Vec<f64> = firsts.iter().map(|&r| q.cardinality(r)).collect();
        assert!(cards.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(firsts[0], RelId(1)); // b, card 10
    }

    #[test]
    fn generated_orders_are_valid_and_complete() {
        let q = chain();
        for crit in AugmentationCriterion::ALL {
            let h = AugmentationHeuristic::new(crit);
            for o in h.generate_all(&q, &comp(&q)) {
                assert_eq!(o.len(), 4, "criterion {crit:?}");
                assert!(is_valid(q.graph(), o.rels()), "criterion {crit:?}: {o}");
            }
        }
    }

    #[test]
    fn min_selectivity_follows_cheapest_edge() {
        let q = chain();
        let h = AugmentationHeuristic::new(AugmentationCriterion::MinSelectivity);
        // From b, the cheapest incident edge is b-c (0.001), then from
        // {b,c} the candidates are a (J=0.1) and d (J=0.05) -> d first.
        let o = h.generate(&q, &comp(&q), RelId(1));
        assert_eq!(
            o.rels(),
            &[RelId(1), RelId(2), RelId(3), RelId(0)],
            "expected b c d a, got {o}"
        );
    }

    #[test]
    fn min_cardinality_prefers_small_relations() {
        let q = chain();
        let h = AugmentationHeuristic::new(AugmentationCriterion::MinCardinality);
        // From b (10): candidates a (1000) and c (500) -> c; then d (20)
        // beats a -> b c d a.
        let o = h.generate(&q, &comp(&q), RelId(1));
        assert_eq!(o.rels(), &[RelId(1), RelId(2), RelId(3), RelId(0)]);
    }

    #[test]
    fn max_degree_prefers_hubs() {
        // Star with hub h and spokes s1..s3; from a spoke the only
        // candidate is the hub, afterwards all spokes tie by degree and id
        // order breaks ties.
        let q = QueryBuilder::new()
            .relation("s1", 100)
            .relation("h", 50)
            .relation("s2", 100)
            .relation("s3", 100)
            .join("h", "s1", 0.01)
            .join("h", "s2", 0.01)
            .join("h", "s3", 0.01)
            .build()
            .unwrap();
        let h = AugmentationHeuristic::new(AugmentationCriterion::MaxDegree);
        let o = h.generate(&q, &comp(&q), RelId(0));
        assert_eq!(o.rels(), &[RelId(0), RelId(1), RelId(2), RelId(3)]);
    }

    #[test]
    fn all_criteria_produce_one_order_per_first_relation() {
        let q = chain();
        let h = AugmentationHeuristic::default();
        let orders = h.generate_all(&q, &comp(&q));
        assert_eq!(orders.len(), 4);
        // Each order starts with a distinct relation.
        let firsts: std::collections::HashSet<RelId> = orders.iter().map(|o| o.at(0)).collect();
        assert_eq!(firsts.len(), 4);
    }

    #[test]
    fn singleton_component() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 10)
            .join("a", "b", 0.5)
            .build()
            .unwrap();
        let h = AugmentationHeuristic::default();
        let o = h.generate(&q, &[RelId(0), RelId(1)], RelId(0));
        assert_eq!(o.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not in component")]
    fn first_outside_component_panics() {
        let q = chain();
        let h = AugmentationHeuristic::default();
        let _ = h.generate(&q, &[RelId(0), RelId(1)], RelId(3));
    }
}
