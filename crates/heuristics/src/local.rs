//! The local improvement heuristic (paper §4.3).
//!
//! Given an ordering, consider sliding *clusters* of `c` consecutive
//! positions with overlap `o` (`0 ≤ o ≤ c−1`): within each cluster, try
//! every permutation of its relations and keep the best valid one. A pass
//! over all clusters never worsens the ordering; with overlap, passes are
//! repeated until a fixpoint. The search per cluster is factorial in `c`,
//! so only small clusters are practical — the paper found the useful
//! strategies to be, in order of decreasing budget appetite:
//! `(5,4), (4,3), (3,2), (2,1), (2,0)`.

use ljqo_catalog::RelId;
use ljqo_cost::Evaluator;
use ljqo_plan::validity::ValidityChecker;
use ljqo_plan::JoinOrder;

/// A local improvement strategy `(c, o)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalImprovement {
    /// Cluster size `c ≥ 2`.
    pub cluster: usize,
    /// Overlap `o < c`.
    pub overlap: usize,
}

/// The budget-ordered strategy ladder from the paper: use the first entry
/// whose single pass fits the remaining budget.
pub const STRATEGY_LADDER: [LocalImprovement; 5] = [
    LocalImprovement {
        cluster: 5,
        overlap: 4,
    },
    LocalImprovement {
        cluster: 4,
        overlap: 3,
    },
    LocalImprovement {
        cluster: 3,
        overlap: 2,
    },
    LocalImprovement {
        cluster: 2,
        overlap: 1,
    },
    LocalImprovement {
        cluster: 2,
        overlap: 0,
    },
];

impl LocalImprovement {
    /// Create a strategy. Panics unless `2 ≤ c` and `o < c`.
    pub fn new(cluster: usize, overlap: usize) -> Self {
        assert!(cluster >= 2, "cluster size must be at least 2");
        assert!(
            overlap < cluster,
            "overlap must be smaller than the cluster"
        );
        LocalImprovement { cluster, overlap }
    }

    /// Number of cluster windows in one pass over an order of length `n`.
    pub fn windows(&self, n: usize) -> usize {
        if n < 2 {
            return 0;
        }
        let step = self.cluster - self.overlap;
        // Windows start at 0, step, 2·step, ... while at least two
        // positions remain to permute.
        1 + (n.saturating_sub(2)) / step
    }

    /// Upper bound on evaluations consumed by one pass over `n` relations
    /// (each window tries `c! − 1` non-identity permutations).
    pub fn pass_evaluations(&self, n: usize) -> u64 {
        let fact: u64 = (1..=self.cluster as u64).product();
        self.windows(n) as u64 * (fact - 1)
    }

    /// The paper's budget rule: the most aggressive ladder strategy whose
    /// single pass fits in `remaining` budget units, if any.
    pub fn best_for_budget(n: usize, remaining: u64) -> Option<LocalImprovement> {
        STRATEGY_LADDER
            .into_iter()
            .find(|s| s.pass_evaluations(n) <= remaining)
    }

    /// One pass: slide the cluster over the order, exhaustively permuting
    /// each window. Returns `true` if the order improved. Stops early when
    /// the evaluator's budget is exhausted.
    pub fn pass(&self, ev: &mut Evaluator<'_>, order: &mut JoinOrder) -> bool {
        let n = order.len();
        if n < 2 {
            return false;
        }
        let graph = ev.query().graph();
        let mut checker = ValidityChecker::new(ev.query().n_relations());
        let mut current_cost = ev.cost(order);
        let mut improved = false;
        let step = self.cluster - self.overlap;
        let mut start = 0;
        while start + 1 < n {
            if ev.exhausted() {
                break;
            }
            let end = (start + self.cluster).min(n);
            let window: Vec<RelId> = order.rels()[start..end].to_vec();
            let mut best_window = window.clone();
            let mut candidate = order.clone();
            for perm in permutations(&window) {
                if ev.exhausted() {
                    break;
                }
                if perm == best_window {
                    continue;
                }
                candidate.rels_mut()[start..end].copy_from_slice(&perm);
                if !checker.is_valid(graph, candidate.rels()) {
                    // Validity filtering is cheap but not free; charge one
                    // unit so the heuristic cannot scan for free.
                    ev.charge(1);
                    continue;
                }
                let c = ev.cost(&candidate);
                if c < current_cost {
                    current_cost = c;
                    best_window = perm;
                    improved = true;
                }
                if ev.exhausted() {
                    break;
                }
            }
            order.rels_mut()[start..end].copy_from_slice(&best_window);
            start += step;
        }
        improved
    }

    /// Repeat passes until a fixpoint (or budget exhaustion). Without
    /// overlap a single pass suffices, as the paper notes.
    pub fn improve(&self, ev: &mut Evaluator<'_>, order: &mut JoinOrder) {
        loop {
            let improved = self.pass(ev, order);
            if !improved || self.overlap == 0 || ev.exhausted() {
                break;
            }
        }
    }
}

/// All permutations of `items` (lexicographic by construction order).
/// Cluster sizes are ≤ 5, so at most 120 permutations.
fn permutations(items: &[RelId]) -> Vec<Vec<RelId>> {
    let mut out = Vec::new();
    let mut acc = Vec::with_capacity(items.len());
    fn rec(rest: &[RelId], acc: &mut Vec<RelId>, out: &mut Vec<Vec<RelId>>) {
        if rest.is_empty() {
            out.push(acc.clone());
            return;
        }
        for i in 0..rest.len() {
            let mut next = rest.to_vec();
            let r = next.remove(i);
            acc.push(r);
            rec(&next, acc, out);
            acc.pop();
        }
    }
    rec(items, &mut acc, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::{Query, QueryBuilder};
    use ljqo_cost::{CostModel, MemoryCostModel};
    use ljqo_plan::validity::is_valid;

    fn chain_query() -> Query {
        QueryBuilder::new()
            .relation("a", 2000)
            .relation("b", 10)
            .relation("c", 800)
            .relation("d", 40)
            .relation("e", 900)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .build()
            .unwrap()
    }

    fn order(v: &[u32]) -> JoinOrder {
        JoinOrder::new(v.iter().map(|&i| RelId(i)).collect())
    }

    #[test]
    fn permutations_count() {
        let items: Vec<RelId> = (0..4u32).map(RelId).collect();
        assert_eq!(permutations(&items).len(), 24);
        assert_eq!(permutations(&items[..1]).len(), 1);
    }

    #[test]
    fn window_and_evaluation_counts() {
        let s = LocalImprovement::new(3, 2);
        // n=10: windows start at 0..=8 -> 9 windows.
        assert_eq!(s.windows(10), 9);
        assert_eq!(s.pass_evaluations(10), 9 * 5);
        let s2 = LocalImprovement::new(2, 0);
        // n=10: starts 0,2,4,6,8 -> 5 windows.
        assert_eq!(s2.windows(10), 5);
    }

    #[test]
    fn ladder_picks_biggest_affordable() {
        // (5,4) on n=20 costs 16·119 = 1904 evals.
        let s = LocalImprovement::best_for_budget(20, 10_000).unwrap();
        assert_eq!(s, LocalImprovement::new(5, 4));
        let s = LocalImprovement::best_for_budget(20, 200).unwrap();
        assert!(s.cluster < 5);
        assert_eq!(LocalImprovement::best_for_budget(20, 0), None);
    }

    #[test]
    fn pass_never_worsens_and_keeps_validity() {
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&q, &model);
        let mut o = order(&[0, 1, 2, 3, 4]);
        let before = model.order_cost(&q, o.rels());
        LocalImprovement::new(3, 2).improve(&mut ev, &mut o);
        let after = model.order_cost(&q, o.rels());
        assert!(after <= before);
        assert!(is_valid(q.graph(), o.rels()));
        assert_eq!(o.len(), 5);
    }

    #[test]
    fn full_cluster_finds_global_optimum_of_component() {
        // With c = n the single cluster enumerates every permutation, so
        // local improvement must return a global optimum.
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&q, &model);
        let mut o = order(&[0, 1, 2, 3, 4]);
        LocalImprovement::new(5, 0).improve(&mut ev, &mut o);
        let got = model.order_cost(&q, o.rels());

        // Brute force over all valid permutations.
        let all: Vec<RelId> = q.rel_ids().collect();
        let mut best = f64::INFINITY;
        for perm in permutations(&all) {
            if is_valid(q.graph(), &perm) {
                best = best.min(model.order_cost(&q, &perm));
            }
        }
        assert!((got - best).abs() <= best * 1e-12, "{got} vs {best}");
    }

    #[test]
    fn budget_exhaustion_stops_pass() {
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&q, &model, 5);
        let mut o = order(&[0, 1, 2, 3, 4]);
        LocalImprovement::new(5, 4).improve(&mut ev, &mut o);
        assert!(ev.used() <= 7, "must stop promptly after exhaustion");
        assert!(is_valid(q.graph(), o.rels()));
    }

    #[test]
    fn tiny_orders_are_no_ops() {
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&q, &model);
        let mut o = order(&[2]);
        assert!(!LocalImprovement::new(2, 1).pass(&mut ev, &mut o));
    }
}
