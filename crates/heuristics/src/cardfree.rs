//! A cardinality-free ordering heuristic (after Simpli-Squared,
//! arxiv 2111.00163).
//!
//! Simpli-Squared observes that a join order chosen from the *structure*
//! of the join graph alone — ignoring every cardinality, selectivity, and
//! distinct count — is unexpectedly competitive exactly when the
//! statistics feeding the cost model are wrong. The intuition: hub
//! relations participate in many predicates, so placing them early lets
//! every subsequent join apply at least one filtering predicate, and none
//! of that reasoning consumes a single estimate.
//!
//! This makes the heuristic the natural *last line of defense*: it cannot
//! be misled by corrupted statistics (it never reads them) and it cannot
//! panic on NaN cardinalities (it never touches them). The optimizer
//! layer uses it both as a portfolio challenger and as a degradation rung
//! above the random-order fallback.

use ljqo_catalog::{JoinGraph, RelId};
use ljqo_plan::JoinOrder;

/// Structure-only join ordering: pick the highest-degree relation first,
/// then repeatedly choose the frontier relation with the most join edges
/// into the placed set (ties: higher total degree, then lower id).
///
/// The heuristic reads only the join graph — no cardinalities,
/// selectivities, or distinct counts — so it is immune to estimation
/// error and total statistics loss. Orders are valid by construction
/// (only relations joined to the placed set are candidates) and the
/// whole run is `O(N·E)` and fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CardFreeHeuristic;

impl CardFreeHeuristic {
    /// The starting relation for `component`: maximum join-graph degree,
    /// ties broken by lowest id.
    ///
    /// Panics if `component` is empty.
    pub fn first_relation(graph: &JoinGraph, component: &[RelId]) -> RelId {
        *component
            .iter()
            .max_by(|&&a, &&b| {
                graph.degree(a).cmp(&graph.degree(b)).then(b.cmp(&a)) // reversed: lower id wins the max_by
            })
            .expect("component must be non-empty")
    }

    /// Generate the structural order for `component`, starting from
    /// [`Self::first_relation`].
    pub fn generate(&self, graph: &JoinGraph, component: &[RelId]) -> JoinOrder {
        self.generate_from(graph, component, Self::first_relation(graph, component))
    }

    /// Generate the structural order for `component` starting at `first`.
    ///
    /// Panics if `first` is not in `component`. If the component is not
    /// connected the result covers only the part reachable from `first`
    /// (guarded by a debug assertion, mirroring the augmentation
    /// heuristic's contract).
    pub fn generate_from(&self, graph: &JoinGraph, component: &[RelId], first: RelId) -> JoinOrder {
        assert!(component.contains(&first), "{first} not in component");
        let n_rel = graph.n_relations();
        let mut in_component = vec![false; n_rel];
        for &r in component {
            in_component[r.index()] = true;
        }
        let mut placed = vec![false; n_rel];
        // Edges from each relation into the placed set, maintained
        // incrementally as relations are placed.
        let mut links = vec![0usize; n_rel];
        let mut order = Vec::with_capacity(component.len());

        let mut frontier: Vec<RelId> = Vec::new();
        let mut in_frontier = vec![false; n_rel];
        let place = |r: RelId,
                     placed: &mut Vec<bool>,
                     links: &mut Vec<usize>,
                     frontier: &mut Vec<RelId>,
                     in_frontier: &mut Vec<bool>| {
            placed[r.index()] = true;
            for &eid in graph.incident(r) {
                if let Some(o) = graph.edge(eid).other(r) {
                    if in_component[o.index()] && !placed[o.index()] {
                        links[o.index()] += 1;
                        if !in_frontier[o.index()] {
                            in_frontier[o.index()] = true;
                            frontier.push(o);
                        }
                    }
                }
            }
        };
        order.push(first);
        place(
            first,
            &mut placed,
            &mut links,
            &mut frontier,
            &mut in_frontier,
        );

        while !frontier.is_empty() {
            // argmax(edges into placed set), ties by total degree (desc),
            // then id (asc) — all structural, nothing estimated.
            let mut best_idx = 0;
            for (idx, &j) in frontier.iter().enumerate() {
                let b = frontier[best_idx];
                let better = links[j.index()]
                    .cmp(&links[b.index()])
                    .then(graph.degree(j).cmp(&graph.degree(b)))
                    .then(b.cmp(&j)); // lower id wins
                if better == std::cmp::Ordering::Greater {
                    best_idx = idx;
                }
            }
            let next = frontier.swap_remove(best_idx);
            in_frontier[next.index()] = false;
            order.push(next);
            place(
                next,
                &mut placed,
                &mut links,
                &mut frontier,
                &mut in_frontier,
            );
        }
        debug_assert_eq!(order.len(), component.len(), "component not connected");
        JoinOrder::new(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::{Query, QueryBuilder};
    use ljqo_plan::validity::is_valid;

    /// Star with hub `h` plus a chain hanging off spoke `s2`.
    fn starred() -> Query {
        QueryBuilder::new()
            .relation("s1", 100)
            .relation("h", 50)
            .relation("s2", 100)
            .relation("t", 30)
            .join("h", "s1", 0.01)
            .join("h", "s2", 0.01)
            .join("s2", "t", 0.1)
            .build()
            .unwrap()
    }

    fn comp(q: &Query) -> Vec<RelId> {
        q.rel_ids().collect()
    }

    #[test]
    fn starts_at_the_hub() {
        let q = starred();
        let first = CardFreeHeuristic::first_relation(q.graph(), &comp(&q));
        assert_eq!(first, RelId(1), "hub h has the highest degree");
    }

    #[test]
    fn orders_are_valid_and_complete() {
        let q = starred();
        let o = CardFreeHeuristic.generate(q.graph(), &comp(&q));
        assert_eq!(o.len(), 4);
        assert!(is_valid(q.graph(), o.rels()), "{o}");
    }

    #[test]
    fn ignores_every_statistic() {
        // Two catalogs with identical join graphs but wildly different
        // statistics must produce the same order.
        let a = starred();
        let b = QueryBuilder::new()
            .relation("s1", 1)
            .relation("h", 1_000_000)
            .relation("s2", 7)
            .relation("t", 99_999)
            .join("h", "s1", 0.5)
            .join("h", "s2", 0.9)
            .join("s2", "t", 0.001)
            .build()
            .unwrap();
        let oa = CardFreeHeuristic.generate(a.graph(), &comp(&a));
        let ob = CardFreeHeuristic.generate(b.graph(), &comp(&b));
        assert_eq!(oa, ob);
    }

    #[test]
    fn prefers_the_most_connected_frontier_relation() {
        // h - a, h - b, a - b: after placing h, both a and b have one
        // link; after placing a (lowest id tie-break), b has two links.
        let q = QueryBuilder::new()
            .relation("h", 10)
            .relation("a", 10)
            .relation("b", 10)
            .relation("c", 10)
            .join("h", "a", 0.1)
            .join("h", "b", 0.1)
            .join("a", "b", 0.1)
            .join("h", "c", 0.1)
            .build()
            .unwrap();
        let o = CardFreeHeuristic.generate(q.graph(), &comp(&q));
        // h first (degree 3); a and b tie on links=1 but beat c on
        // degree; a wins the id tie; then b has 2 links into {h,a}.
        assert_eq!(o.rels(), &[RelId(0), RelId(1), RelId(2), RelId(3)]);
    }

    #[test]
    fn singleton_component() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 10)
            .join("a", "b", 0.5)
            .build()
            .unwrap();
        let o = CardFreeHeuristic.generate(q.graph(), &[RelId(0)]);
        assert_eq!(o.rels(), &[RelId(0)]);
    }

    #[test]
    #[should_panic(expected = "not in component")]
    fn first_outside_component_panics() {
        let q = starred();
        let _ = CardFreeHeuristic.generate_from(q.graph(), &[RelId(0), RelId(1)], RelId(3));
    }
}
