//! # ljqo-heuristics — the paper's three heuristic families
//!
//! Section 4 of the paper studies three heuristics for large join query
//! optimization:
//!
//! * **Augmentation** ([`augmentation`]) — grow a permutation one relation
//!   at a time, choosing the next relation by one of five criteria
//!   (Table 1 of the paper compares them; criterion 3, minimum join
//!   selectivity, wins).
//! * **KBZ** ([`kbz`]) — the Krishnamurthy/Boral/Zaniolo `O(N²)` algorithm:
//!   algorithm **G** picks a minimum spanning tree of the join graph,
//!   algorithm **T** tries every root, and algorithm **R** produces the
//!   rank-optimal order for each rooted tree (Table 2 compares the
//!   spanning-tree weight criteria).
//! * **Local improvement** ([`local`]) — exhaustive search inside sliding
//!   clusters of size `c` with overlap `o`, repeated until fixpoint.
//!
//! A fourth, post-paper family backs the robustness work:
//!
//! * **Cardinality-free** ([`cardfree`]) — order by join-graph structure
//!   only (after Simpli-Squared, arxiv 2111.00163). It reads no
//!   statistics at all, so it is immune to estimation error; the
//!   optimizer uses it as a portfolio challenger and as a degradation
//!   rung when statistics are missing or corrupt. Like augmentation, one
//!   generated order is charged `N` budget units.
//!
//! Augmentation and KBZ are *constructive*: they generate orders from the
//! catalog statistics alone and are pure functions of the query. The
//! optimizer layer (crate `ljqo`) charges the deterministic work budget
//! for them: one budget unit is `O(N)` elementary operations, so
//! generating one augmentation order costs `N` units and one KBZ run costs
//! `N` units per root plus `N` for the spanning tree — reproducing the
//! paper's observation that KBZ pays `O(N²)` for a *single* state while
//! augmentation gets `N+1` states for the same price. Local improvement
//! consumes budget through the [`ljqo_cost::Evaluator`] it is given, one
//! unit per candidate cluster permutation evaluated.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod augmentation;
pub mod cardfree;
pub mod kbz;
pub mod local;

pub use augmentation::{AugmentationCriterion, AugmentationHeuristic};
pub use cardfree::CardFreeHeuristic;
pub use kbz::{KbzHeuristic, MstWeight};
pub use local::LocalImprovement;
