//! Quickstart: describe a query, optimize it, print the plan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ljqo::prelude::*;

fn main() {
    // A 12-join snowflake-ish query: orders fan out to customers,
    // lineitems, parts, suppliers and their dimension tables.
    let query = QueryBuilder::new()
        .relation("orders", 1_500_000)
        .relation_with_selection("customers", 150_000, 0.2)
        .relation("lineitems", 6_000_000)
        .relation("parts", 200_000)
        .relation("suppliers", 10_000)
        .relation("nations", 25)
        .relation("regions", 5)
        .relation_with_selection("clerks", 1_000, 0.5)
        .relation("shipmodes", 7)
        .relation("warehouses", 100)
        .relation("carriers", 50)
        .relation("promos", 365)
        .relation("returns", 90_000)
        .join_on_distincts("orders", "customers", 150_000.0, 150_000.0)
        .join_on_distincts("orders", "lineitems", 1_500_000.0, 1_500_000.0)
        .join_on_distincts("lineitems", "parts", 200_000.0, 200_000.0)
        .join_on_distincts("lineitems", "suppliers", 10_000.0, 10_000.0)
        .join_on_distincts("suppliers", "nations", 25.0, 25.0)
        .join_on_distincts("nations", "regions", 5.0, 5.0)
        .join_on_distincts("orders", "clerks", 1_000.0, 1_000.0)
        .join_on_distincts("lineitems", "shipmodes", 7.0, 7.0)
        .join_on_distincts("lineitems", "warehouses", 100.0, 100.0)
        .join_on_distincts("lineitems", "carriers", 50.0, 50.0)
        .join_on_distincts("orders", "promos", 365.0, 365.0)
        .join_on_distincts("orders", "returns", 90_000.0, 90_000.0)
        .build()
        .expect("query is well-formed");

    println!(
        "query: {} relations, {} joins, {} join predicates\n",
        query.n_relations(),
        query.n_joins(),
        query.graph().edges().len()
    );

    let model = MemoryCostModel::default();

    // The paper's recommendation: IAI at a generous time limit.
    let config = OptimizerConfig::new(Method::Iai).with_seed(42);
    let result = optimize(&query, &model, &config);

    println!("IAI plan (cost {:.3e}):", result.cost);
    println!("{}", result.plan.to_tree().explain(&query));
    println!(
        "search effort: {} plan evaluations in {} budget units",
        result.n_evals, result.units_used
    );

    // Compare against the naive left-to-right order.
    let naive = JoinOrder::identity(&query);
    let naive_cost = model.order_cost(&query, naive.rels());
    println!(
        "\nnaive order costs {:.3e} — {}x the optimized plan",
        naive_cost,
        (naive_cost / result.cost).round()
    );
}
