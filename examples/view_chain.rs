//! Chain-of-views workload: the paper's motivation includes queries whose
//! join count balloons invisibly through nested views (and deductive
//! database rule expansion). Here a 40-join chain query — each "view"
//! joins one more relation onto the previous — is optimized under both
//! cost models, demonstrating the paper's §6.2 claim that the method
//! ranking is insensitive to the cost model.
//!
//! ```sh
//! cargo run --release --example view_chain
//! ```

use ljqo::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn build_chain(n_joins: usize, seed: u64) -> Query {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = QueryBuilder::new();
    let mut names = Vec::new();
    for i in 0..=n_joins {
        let name = format!("v{i:02}");
        let card = 10u64.pow(rng.gen_range(1..=4)) * rng.gen_range(1u64..10);
        b = b.relation(&name, card);
        names.push((name, card));
    }
    for i in 1..=n_joins {
        let (prev, pc) = names[i - 1].clone();
        let (cur, cc) = names[i].clone();
        let d_prev = pc as f64 * rng.gen_range(0.05..0.5);
        let d_cur = cc as f64 * rng.gen_range(0.05..0.5);
        b = b.join_on_distincts(&prev, &cur, d_prev, d_cur);
    }
    b.build().expect("chain query is well-formed")
}

fn main() {
    let query = build_chain(40, 2024);
    println!(
        "view chain: {} relations, {} joins\n",
        query.n_relations(),
        query.n_joins()
    );

    let memory = MemoryCostModel::default();
    let disk = DiskCostModel::default();

    println!(
        "{:>8} {:>14} {:>14} {:>14}   (cost model)",
        "limit", "IAI", "AGI", "II"
    );
    for (label, model) in [
        ("memory", &memory as &dyn CostModel),
        ("disk", &disk as &dyn CostModel),
    ] {
        for tau in [0.5, 9.0] {
            print!("{tau:>7.1}N²");
            for method in [Method::Iai, Method::Agi, Method::Ii] {
                let config = OptimizerConfig::new(method)
                    .with_time_limit(tau)
                    .with_seed(99);
                let result = optimize(&query, model, &config);
                print!(" {:>14.6e}", result.cost);
            }
            println!("   ({label})");
        }
    }

    // How large would System-R dynamic programming's table be here?
    println!(
        "\nSystem-R DP would need 2^{} ≈ {:.1e} subset states for this query — \
         the infeasibility that motivates the paper.",
        query.n_relations(),
        2f64.powi(query.n_relations() as i32)
    );

    let best = optimize(
        &query,
        &memory,
        &OptimizerConfig::new(Method::Iai).with_seed(99),
    );
    println!(
        "\nIAI join order (permutation notation):\n{}",
        best.plan.segments[0]
    );
}
