//! Plot-ready search trajectories: trace best-so-far cost against budget
//! for several methods on one query and write CSVs under `results/`.
//!
//! ```sh
//! cargo run --release --example search_trace
//! # then plot results/trace_*.csv (units, best_cost) with any tool
//! ```

use ljqo::prelude::*;
use ljqo_workload::{generate_query, Benchmark};

fn main() {
    let query = generate_query(&Benchmark::Default.spec(), 40, 0x77ace);
    println!(
        "tracing a {}-join default-benchmark query (seed 0x77ace)\n",
        query.n_joins()
    );
    let model = MemoryCostModel::default();
    let runner = MethodRunner::default();

    std::fs::create_dir_all("results").ok();
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "method", "cost@0.3N²", "final cost", "points"
    );
    for method in [Method::Iai, Method::Agi, Method::Ii, Method::Sa] {
        let trace = trace_run(
            &query,
            &model,
            method,
            &runner,
            TimeLimit::of(9.0),
            5.0,
            90, // one point per 0.1N²
            42,
        );
        let at_03 = trace
            .points
            .iter()
            .find(|p| p.units >= TimeLimit::of(0.3).units(query.n_joins(), 5.0))
            .map(|p| p.best_cost)
            .unwrap_or(f64::NAN);
        println!(
            "{:>6} {:>14.4e} {:>14.4e} {:>10}",
            trace.method,
            at_03,
            trace.final_cost,
            trace.points.len()
        );
        let path = format!("results/trace_{}.csv", method.name().to_lowercase());
        if let Err(e) = std::fs::write(&path, trace.to_csv()) {
            eprintln!("could not write {path}: {e}");
        }
    }
    println!("\nwrote results/trace_<method>.csv");
}
