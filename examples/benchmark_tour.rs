//! Tour of the synthetic benchmarks: generate one query from the default
//! distributions and from each of the nine §5 variations, print its
//! shape statistics, and optimize it with IAI — a quick feel for how the
//! variations change the problem.
//!
//! ```sh
//! cargo run --release --example benchmark_tour
//! ```

use ljqo::prelude::*;
use ljqo_workload::{generate_query, Benchmark};

fn main() {
    let n = 30;
    println!("one {n}-join query per benchmark (seed 7):\n");
    println!(
        "{:>2} {:<18} {:>6} {:>9} {:>9} {:>8} {:>12}",
        "#", "benchmark", "edges", "max card", "max deg", "evals", "IAI cost"
    );
    for bench in Benchmark::ALL {
        let query = generate_query(&bench.spec(), n, 7);
        let max_card = query
            .rel_ids()
            .map(|r| query.cardinality(r))
            .fold(0.0f64, f64::max);
        let max_deg = query
            .rel_ids()
            .map(|r| query.graph().degree(r))
            .max()
            .unwrap();

        let model = MemoryCostModel::default();
        let result = optimize(
            &query,
            &model,
            &OptimizerConfig::new(Method::Iai).with_seed(1),
        );
        println!(
            "{:>2} {:<18} {:>6} {:>9.0} {:>9} {:>8} {:>12.3e}",
            bench.number(),
            bench.name(),
            query.graph().edges().len(),
            max_card,
            max_deg,
            result.n_evals,
            result.cost
        );
    }
    println!(
        "\nstar graphs concentrate degree on a hub; dense graphs carry extra \
         predicates;\nthe distinct-value variations change intermediate sizes \
         rather than the graph."
    );
}
