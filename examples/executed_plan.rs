//! Close the loop: optimize a query, then actually EXECUTE the chosen
//! plan (and a deliberately bad one) on synthetic data with real hash
//! joins, comparing the estimator's intermediate sizes against measured
//! row counts and the cost model's ranking against measured work.
//!
//! ```sh
//! cargo run --release --example executed_plan
//! ```

use ljqo::prelude::*;
use ljqo_exec::{generate_data, validate_order};

fn main() {
    // Moderate sizes so execution stays fast.
    let query = QueryBuilder::new()
        .relation("users", 20_000)
        .relation("sessions", 80_000)
        .relation("events", 200_000)
        .relation("devices", 5_000)
        .relation("plans", 40)
        .relation("regions", 12)
        .join_on_distincts("users", "sessions", 20_000.0, 20_000.0)
        .join_on_distincts("sessions", "events", 80_000.0, 80_000.0)
        .join_on_distincts("sessions", "devices", 5_000.0, 5_000.0)
        .join_on_distincts("users", "plans", 40.0, 40.0)
        .join_on_distincts("users", "regions", 12.0, 12.0)
        .build()
        .expect("query is well-formed");

    let model = MemoryCostModel::default();
    let result = optimize(
        &query,
        &model,
        &OptimizerConfig::new(Method::Iai).with_seed(3),
    );
    let good = result.plan.segments[0].clone();

    // A worst-ish plan: the most expensive valid order among sampled
    // candidates.
    use rand::SeedableRng as _;
    let component: Vec<RelId> = query.rel_ids().collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
    let mut worst = good.clone();
    let mut worst_cost = model.order_cost(&query, worst.rels());
    for _ in 0..200 {
        let cand = ljqo::plan::random_valid_order(query.graph(), &component, &mut rng);
        let c = model.order_cost(&query, cand.rels());
        if c > worst_cost {
            worst_cost = c;
            worst = cand;
        }
    }

    println!("generating data ({} relations)...", query.n_relations());
    let data = generate_data(&query, 11);

    for (label, order) in [("optimized", &good), ("bad", &worst)] {
        let est_cost = model.order_cost(&query, order.rels());
        match validate_order(&query, &data, order.rels()) {
            Ok(report) => {
                println!("\n{label} plan {order} — model cost {est_cost:.3e}");
                print!("{}", report.render(&query));
            }
            Err(e) => println!("\n{label} plan {order}: execution aborted: {e}"),
        }
    }
}
