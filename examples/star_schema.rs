//! Star-schema workload: one fact table joined to many dimensions — the
//! "star-like join graph" the paper's benchmark variation 8 singles out
//! as a stress test (it enlarges the search space because only orders
//! that reach the hub early are valid).
//!
//! Compares the paper's five surviving methods at several time limits and
//! shows what the constructive heuristics propose on their own.
//!
//! ```sh
//! cargo run --release --example star_schema
//! ```

use ljqo::prelude::*;

fn build_star(n_dims: usize) -> Query {
    let mut b = QueryBuilder::new().relation("fact", 10_000_000);
    for i in 0..n_dims {
        // Dimension sizes spread over three orders of magnitude.
        let card = 50 * (i as u64 % 7 + 1) * 10u64.pow(i as u32 % 3 + 1);
        let name = format!("dim{i:02}");
        b = b.relation(&name, card);
        let d = card as f64 * 0.8;
        b = b.join_on_distincts("fact", &name, d, d);
    }
    b.build().expect("star query is well-formed")
}

fn main() {
    let query = build_star(20);
    println!(
        "star query: fact(10M) + {} dimensions, {} joins\n",
        query.n_relations() - 1,
        query.n_joins()
    );
    let model = MemoryCostModel::default();

    // What do the constructive heuristics propose?
    let comp: Vec<RelId> = query.rel_ids().collect();
    let aug = AugmentationHeuristic::default();
    let firsts = AugmentationHeuristic::first_relations(&query, &comp);
    let mut ev = Evaluator::new(&query, &model);
    let aug_order = aug.generate(&query, &comp, firsts[0]);
    let aug_cost = ev.cost(&aug_order);
    println!("augmentation (crit 3, smallest-first): cost {aug_cost:.3e}");

    let kbz = KbzHeuristic::default();
    let kbz_order = kbz.generate(&mut ev, &comp).expect("kbz completes");
    let kbz_cost = model.order_cost(&query, kbz_order.rels());
    println!("KBZ (selectivity MST):                 cost {kbz_cost:.3e}\n");

    // The five methods at increasing time limits.
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "limit", "IAI", "IAL", "AGI", "KBI", "II"
    );
    for tau in [0.3, 1.5, 9.0] {
        print!("{:>7.1}N²", tau);
        for method in Method::TOP_FIVE {
            let config = OptimizerConfig::new(method)
                .with_time_limit(tau)
                .with_seed(7);
            let result = optimize(&query, &model, &config);
            print!(" {:>12.4e}", result.cost);
        }
        println!();
    }

    let best = optimize(
        &query,
        &model,
        &OptimizerConfig::new(Method::Iai).with_seed(7),
    );
    println!("\nbest IAI plan:\n{}", best.plan.to_tree().explain(&query));
}
