//! # ljqo-repro — workspace umbrella crate
//!
//! This crate exists to host the repository-level `examples/` and
//! `tests/` directories; the library surface is re-exported from the
//! [`ljqo`] core crate. Depend on `ljqo` directly in real projects.
//!
//! See `README.md` for the tour and `DESIGN.md` for the paper-to-module
//! map.

#![warn(missing_docs)]

pub use ljqo::prelude;
pub use ljqo::*;
